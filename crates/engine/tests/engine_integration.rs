//! End-to-end engine tests: durability without checkpoints, torn-tail
//! recovery, checkpoint compaction, and concurrent sessions over a
//! partitioned tree.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use sks_core::{Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, RecoveryPath, SksDb};
use sks_storage::SyncPolicy;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_engine_it_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Whether the CI matrix pinned a backend for the generic tests
/// (`SKS_TEST_BACKEND=memory|file`; unset = memory). The engine re-roots
/// each partition's stores under the database directory, so the file
/// backend's own `dir` is a placeholder.
fn env_backend() -> Option<StorageBackend> {
    match std::env::var("SKS_TEST_BACKEND").as_deref() {
        Ok("file") => Some(StorageBackend::File {
            dir: std::env::temp_dir(),
            pool_pages: 64,
        }),
        Ok("memory") | Err(_) => None,
        Ok(other) => panic!("SKS_TEST_BACKEND must be 'memory' or 'file', got {other:?}"),
    }
}

fn env_is_file_backend() -> bool {
    env_backend().is_some()
}

/// Backend-generic config: runs on the memory backend by default and on
/// whatever the `SKS_TEST_BACKEND` matrix axis selects in CI.
fn config(partitions: usize, capacity: u64) -> EngineConfig {
    let mut scheme = SchemeConfig::with_capacity(Scheme::Oval, capacity).partitions(partitions);
    if let Some(backend) = env_backend() {
        scheme = scheme.backend(backend);
    }
    EngineConfig::new(scheme)
}

/// Memory-backend config for tests that assert memory-specific semantics
/// (full WAL replay, snapshot checkpoints, repartitioning) regardless of
/// the matrix axis.
fn memory_config(partitions: usize, capacity: u64) -> EngineConfig {
    EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, capacity).partitions(partitions))
}

/// File-backend config: the engine re-roots each partition's stores under
/// the database directory, so the backend's own `dir` is a placeholder.
fn file_config(dir: &std::path::Path, partitions: usize, capacity: u64) -> EngineConfig {
    EngineConfig::new(
        SchemeConfig::with_capacity(Scheme::Oval, capacity)
            .partitions(partitions)
            .backend(StorageBackend::File {
                dir: dir.to_path_buf(),
                pool_pages: 64,
            }),
    )
}

fn record_for(k: u64) -> Vec<u8> {
    format!("record-{k:06}").into_bytes()
}

#[test]
fn recovery_reopens_everything_without_checkpoint() {
    let dir = tmpdir("recovery");
    const N: u64 = 500;
    {
        let db = SksDb::open(&dir, config(4, N + 64)).unwrap();
        let session = db.session();
        for k in 0..N {
            session.insert(k, record_for(k)).unwrap();
        }
        assert_eq!(db.len(), N);
        // Dropped without checkpoint or explicit flush: durability must
        // come from the per-commit WAL writes alone.
    }
    {
        let db = SksDb::open(&dir, config(4, N + 64)).unwrap();
        let report = db.recovery_report();
        assert!(!report.torn_tail);
        assert_eq!(report.records_replayed, N);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(db.len(), N);
        db.validate().unwrap();
        let session = db.session();
        for k in 0..N {
            assert_eq!(session.get(k).unwrap().unwrap(), record_for(k), "key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_deletes_and_overwrites() {
    let dir = tmpdir("replay_mutations");
    {
        let db = SksDb::open(&dir, config(2, 256)).unwrap();
        let s = db.session();
        for k in 0..100u64 {
            s.insert(k, record_for(k)).unwrap();
        }
        for k in (0..100u64).step_by(2) {
            s.delete(k).unwrap();
        }
        for k in (1..100u64).step_by(4) {
            s.insert(k, b"overwritten".to_vec()).unwrap();
        }
    }
    let db = SksDb::open(&dir, config(2, 256)).unwrap();
    let s = db.session();
    assert_eq!(db.len(), 50);
    for k in 0..100u64 {
        let got = s.get(k).unwrap();
        if k % 2 == 0 {
            assert_eq!(got, None, "deleted key {k}");
        } else if (k - 1) % 4 == 0 {
            assert_eq!(got.unwrap(), b"overwritten", "overwritten key {k}");
        } else {
            assert_eq!(got.unwrap(), record_for(k), "untouched key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_prefix() {
    let dir = tmpdir("torn");
    const N: u64 = 300;
    let logical_len;
    {
        let db = SksDb::open(&dir, config(2, N + 64)).unwrap();
        let s = db.session();
        for k in 0..N {
            s.insert(k, record_for(k)).unwrap();
        }
        logical_len = db.wal_len_bytes();
    }
    // Truncate the WAL mid-record: a crash halfway through a write. The
    // stream starts after the FileDisk's fixed 8 KiB header, and cutting
    // 20 bytes before its logical end lands inside the last record (each
    // record here is 46 bytes).
    let wal_path = dir.join("wal.sks");
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.set_len(8192 + logical_len - 20).unwrap();
    drop(f);

    let db = SksDb::open(&dir, config(2, N + 64)).unwrap();
    let report = db.recovery_report();
    assert!(report.torn_tail, "truncation must be reported");
    let survived = report.records_replayed;
    assert!(
        survived < N && survived > 0,
        "a strict, non-empty prefix survives (got {survived})"
    );
    assert_eq!(db.len(), survived);
    db.validate().unwrap();
    // The surviving records are exactly the first `survived` inserts.
    let s = db.session();
    for k in 0..survived {
        assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "key {k}");
    }
    for k in survived..N {
        assert_eq!(s.get(k).unwrap(), None, "torn-off key {k}");
    }

    // And the recovered engine keeps accepting writes durably.
    for k in survived..N {
        s.insert(k, record_for(k)).unwrap();
    }
    drop(s);
    drop(db);
    let db = SksDb::open(&dir, config(2, N + 64)).unwrap();
    assert!(!db.recovery_report().torn_tail, "scrub left a clean log");
    assert_eq!(db.len(), N);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_compacts_wal_and_survives_reopen() {
    let dir = tmpdir("checkpoint");
    {
        let db = SksDb::open(&dir, config(4, 512)).unwrap();
        let s = db.session();
        // Heavy churn: every key rewritten 8 times then half deleted.
        for round in 0..8u64 {
            for k in 0..200u64 {
                s.insert(k, format!("round-{round}-{k}").into_bytes())
                    .unwrap();
            }
        }
        for k in (0..200u64).step_by(2) {
            s.delete(k).unwrap();
        }
        let before = db.wal_len_bytes();
        let live = db.checkpoint().unwrap();
        // Memory backend: the snapshot streams the live set into the
        // fresh log. File backend: durability lives in the pages.
        let want_snapshot = if env_is_file_backend() { 0 } else { 100 };
        assert_eq!(live, want_snapshot);
        let after = db.wal_len_bytes();
        assert!(
            after < before / 4,
            "checkpoint must compact ({before} -> {after} bytes)"
        );
        // Post-checkpoint writes land in the fresh log.
        s.insert(499, b"post-checkpoint".to_vec()).unwrap();
    }
    let db = SksDb::open(&dir, config(4, 512)).unwrap();
    assert_eq!(db.len(), 101);
    let s = db.session();
    assert_eq!(s.get(499).unwrap().unwrap(), b"post-checkpoint");
    for k in (1..200u64).step_by(2) {
        assert_eq!(
            s.get(k).unwrap().unwrap(),
            format!("round-7-{k}").into_bytes()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_sessions_readers_and_writers() {
    let dir = tmpdir("concurrent");
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const PER_WRITER: u64 = 150;
    let db = SksDb::open(&dir, config(8, WRITERS as u64 * PER_WRITER + 64)).unwrap();

    // Pre-load half the key space so readers have something to find.
    let preload = db.session();
    for k in 0..(WRITERS as u64 * PER_WRITER) / 2 {
        preload.insert(k, record_for(k)).unwrap();
    }

    let barrier = Arc::new(Barrier::new(WRITERS + READERS));
    let read_hits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let session = db.session();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let lo = w as u64 * PER_WRITER;
            barrier.wait();
            for k in lo..lo + PER_WRITER {
                session.insert(k, record_for(k)).unwrap();
            }
        }));
    }
    for r in 0..READERS {
        let session = db.session();
        let barrier = Arc::clone(&barrier);
        let read_hits = Arc::clone(&read_hits);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut hits = 0;
            for pass in 0..3u64 {
                for k in 0..WRITERS as u64 * PER_WRITER {
                    if let Some(v) = session
                        .get((k + r as u64 + pass) % (WRITERS as u64 * PER_WRITER))
                        .unwrap()
                    {
                        assert!(v.starts_with(b"record-"));
                        hits += 1;
                    }
                }
            }
            read_hits.fetch_add(hits, Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().expect("no thread panics");
    }

    assert_eq!(db.len(), WRITERS as u64 * PER_WRITER);
    db.validate().unwrap();
    assert!(
        read_hits.load(Ordering::Relaxed) > 0,
        "readers observed live data during the write storm"
    );

    // Everything the concurrent writers logged must be recoverable.
    drop(preload);
    drop(db);
    let db = SksDb::open(&dir, config(8, WRITERS as u64 * PER_WRITER + 64)).unwrap();
    assert_eq!(db.len(), WRITERS as u64 * PER_WRITER);
    let s = db.session();
    for k in 0..WRITERS as u64 * PER_WRITER {
        assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "key {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn range_merges_across_partitions_in_key_order() {
    let dir = tmpdir("range");
    let db = SksDb::open(&dir, config(8, 1024)).unwrap();
    let s = db.session();
    let mut model = BTreeMap::new();
    // Scattered inserts so every partition holds some of the range.
    for k in (0..1000u64).step_by(3) {
        s.insert(k, record_for(k)).unwrap();
        model.insert(k, record_for(k));
    }
    let got = s.range(100, 700).unwrap();
    let want: Vec<(u64, Vec<u8>)> = model
        .range(100..=700)
        .map(|(&k, v)| (k, v.clone()))
        .collect();
    assert_eq!(got, want, "merged range must be in key order and complete");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_amortises_fsyncs_across_sessions() {
    let dir = tmpdir("group");
    let cfg = config(4, 2048).sync(SyncPolicy::EveryN(16));
    let db = SksDb::open(&dir, cfg).unwrap();
    let s = db.session();
    for k in 0..320u64 {
        s.insert(k, record_for(k)).unwrap();
    }
    let snap = db.snapshot();
    assert_eq!(snap.wal_appends, 320);
    assert_eq!(
        snap.wal_fsyncs,
        320 / 16 + 1,
        "EveryN(16) group commit, +1 durable key-check sentinel"
    );
    // fsync-per-commit for comparison.
    let dir2 = tmpdir("group_always");
    let db2 = SksDb::open(&dir2, config(4, 2048).sync(SyncPolicy::Always)).unwrap();
    let s2 = db2.session();
    for k in 0..320u64 {
        s2.insert(k, record_for(k)).unwrap();
    }
    assert_eq!(db2.snapshot().wal_fsyncs, 320 + 1);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn out_of_domain_key_rejected_before_logging() {
    let dir = tmpdir("domain");
    let db = SksDb::open(&dir, config(4, 128)).unwrap();
    let s = db.session();
    let err = s.insert(u64::MAX, b"way out".to_vec()).unwrap_err();
    assert!(format!("{err}").contains("domain"), "got: {err}");
    assert_eq!(
        db.snapshot().wal_appends,
        0,
        "doomed op must not reach the WAL"
    );
    assert_eq!(db.len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_recovers_tail_only_after_checkpoint() {
    let dir = tmpdir("file_tail");
    const N: u64 = 300;
    const TAIL: u64 = 40;
    {
        let db = SksDb::open(&dir, file_config(&dir, 4, 4096)).unwrap();
        assert_eq!(
            db.recovery_report().path,
            RecoveryPath::ColdStart,
            "fresh database"
        );
        let s = db.session();
        for k in 0..N {
            s.insert(k, record_for(k)).unwrap();
        }
        for k in (0..N).step_by(5) {
            s.delete(k).unwrap();
        }
        // Checkpoint flushes the tree pages and truncates the WAL.
        assert_eq!(
            db.checkpoint().unwrap(),
            0,
            "file backend writes no snapshot log"
        );
        // Post-checkpoint tail: some fresh keys, one overwrite, one delete.
        for k in N..N + TAIL {
            s.insert(k, record_for(k)).unwrap();
        }
        s.insert(1, b"overwritten-after-checkpoint".to_vec())
            .unwrap();
        s.delete(2).unwrap();
        // Dropped without flush: the tree pages on disk are still the
        // checkpoint image; the tail lives only in the WAL.
    }
    let total_writes = N + N / 5 + TAIL + 2;
    {
        let db = SksDb::open(&dir, file_config(&dir, 4, 4096)).unwrap();
        let report = db.recovery_report();
        assert_eq!(report.path, RecoveryPath::TailReplay);
        assert_eq!(
            report.records_replayed,
            TAIL + 2,
            "only the post-checkpoint tail is replayed"
        );
        assert!(
            report.records_replayed < total_writes,
            "tail replay must be cheaper than the full history"
        );
        assert_eq!(report.records_skipped, 0);
        db.validate().unwrap();
        let s = db.session();
        assert_eq!(s.get(1).unwrap().unwrap(), b"overwritten-after-checkpoint");
        assert_eq!(s.get(2).unwrap(), None, "tail delete applied");
        for k in 3..N {
            let got = s.get(k).unwrap();
            if k % 5 == 0 {
                assert_eq!(got, None, "pre-checkpoint delete {k}");
            } else {
                assert_eq!(got.unwrap(), record_for(k), "checkpointed key {k}");
            }
        }
        for k in N..N + TAIL {
            assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "tail key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_backend_reports_full_replay() {
    let dir = tmpdir("memory_path");
    {
        let db = SksDb::open(&dir, memory_config(2, 256)).unwrap();
        assert_eq!(db.recovery_report().path, RecoveryPath::ColdStart);
        db.session().insert(1, b"x".to_vec()).unwrap();
    }
    let db = SksDb::open(&dir, memory_config(2, 256)).unwrap();
    assert_eq!(db.recovery_report().path, RecoveryPath::FullReplay);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replaying_full_log_over_flushed_pages_converges() {
    // A crash *between* "pages flushed" and "WAL truncated" (or a
    // graceful flush with no checkpoint) leaves new pages + the full old
    // log. Re-applying the whole history over its own effects must
    // converge to the same state.
    let dir = tmpdir("file_converge");
    const N: u64 = 150;
    {
        let db = SksDb::open(&dir, file_config(&dir, 2, 2048)).unwrap();
        let s = db.session();
        for k in 0..N {
            s.insert(k, record_for(k)).unwrap();
        }
        for k in (0..N).step_by(3) {
            s.delete(k).unwrap();
        }
        // Pages durable, WAL *not* truncated.
        db.flush_pages().unwrap();
        for k in 0..20u64 {
            s.insert(1000 + k, record_for(1000 + k)).unwrap();
        }
    }
    let db = SksDb::open(&dir, file_config(&dir, 2, 2048)).unwrap();
    let report = db.recovery_report();
    assert_eq!(report.path, RecoveryPath::TailReplay);
    assert_eq!(
        report.records_replayed,
        N + N.div_ceil(3) + 20,
        "the whole (untruncated) log is re-applied"
    );
    db.validate().unwrap();
    let s = db.session();
    assert_eq!(db.len(), N - N.div_ceil(3) + 20);
    for k in 0..N {
        let got = s.get(k).unwrap();
        if k % 3 == 0 {
            assert_eq!(got, None, "deleted key {k}");
        } else {
            assert_eq!(got.unwrap(), record_for(k), "key {k}");
        }
    }
    for k in 0..20u64 {
        assert_eq!(s.get(1000 + k).unwrap().unwrap(), record_for(1000 + k));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_writes_no_plaintext_to_any_disk_file() {
    let dir = tmpdir("file_sealed");
    // Keys with distinctive big-endian byte patterns inside the domain.
    let secret_keys: Vec<u64> = vec![0xBEEF, 0xCAFE, 0xF00D, 0xFACE, 0xD00D, 0xB00B];
    {
        let db = SksDb::open(&dir, file_config(&dir, 2, 70_000)).unwrap();
        let s = db.session();
        for (i, &k) in secret_keys.iter().enumerate() {
            s.insert(k, format!("ENGINE-TOP-SECRET-RECORD-{i:04}").into_bytes())
                .unwrap();
        }
        // Both halves of the lifecycle write to disk: checkpointed pages
        // and a fresh WAL tail.
        db.checkpoint().unwrap();
        for (i, &k) in secret_keys.iter().enumerate() {
            s.insert(k, format!("ENGINE-TOP-SECRET-AGAIN-{i:04}").into_bytes())
                .unwrap();
        }
    }
    let mut scanned = 0usize;
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            scanned += 1;
            let raw = std::fs::read(&path).unwrap();
            assert!(
                !raw.windows(17).any(|w| w == &b"ENGINE-TOP-SECRET"[..]),
                "plaintext record bytes leaked into {}",
                path.display()
            );
            for &k in &secret_keys {
                let needle = k.to_be_bytes();
                assert!(
                    !raw.windows(8).any(|w| w == needle),
                    "plaintext key {k:#x} leaked into {}",
                    path.display()
                );
            }
        }
    }
    assert!(
        scanned >= 7,
        "expected wal + 2 partitions x (nodes, data, manifest), scanned {scanned}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_wrong_key_fails_closed() {
    let dir = tmpdir("file_wrong_key");
    {
        let db = SksDb::open(&dir, file_config(&dir, 2, 1024)).unwrap();
        db.session().insert(3, b"sealed".to_vec()).unwrap();
        db.checkpoint().unwrap();
    }
    let mut bad = file_config(&dir, 2, 1024);
    bad.scheme.data_key ^= 0x100;
    let err = SksDb::open(&dir, bad).map(|_| ()).unwrap_err();
    assert!(
        format!("{err}").contains("key mismatch"),
        "wrong key must fail closed before touching pages, got: {err}"
    );
    // Nothing was damaged: the right key still opens and reads.
    let db = SksDb::open(&dir, file_config(&dir, 2, 1024)).unwrap();
    assert_eq!(db.session().get(3).unwrap().unwrap(), b"sealed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_survives_checkpoint_cycles_with_churn() {
    let dir = tmpdir("file_churn");
    let mut model = BTreeMap::new();
    {
        let db = SksDb::open(&dir, file_config(&dir, 4, 2048)).unwrap();
        let s = db.session();
        for round in 0..4u64 {
            for k in 0..250u64 {
                let v = format!("round-{round}-key-{k}").into_bytes();
                s.insert(k, v.clone()).unwrap();
                model.insert(k, v);
            }
            for k in (round..250u64).step_by(4) {
                s.delete(k).unwrap();
                model.remove(&k);
            }
            db.checkpoint().unwrap();
        }
        for k in 500..540u64 {
            let v = record_for(k);
            s.insert(k, v.clone()).unwrap();
            model.insert(k, v);
        }
    }
    let db = SksDb::open(&dir, file_config(&dir, 4, 2048)).unwrap();
    assert_eq!(db.recovery_report().path, RecoveryPath::TailReplay);
    assert_eq!(
        db.recovery_report().records_replayed,
        40,
        "only the last round's tail"
    );
    db.validate().unwrap();
    assert_eq!(db.len(), model.len() as u64);
    let s = db.session();
    for (&k, v) in &model {
        assert_eq!(s.get(k).unwrap().as_ref(), Some(v), "key {k}");
    }
    let got = s.range(0, 2048).unwrap();
    let want: Vec<(u64, Vec<u8>)> = model.iter().map(|(&k, v)| (k, v.clone())).collect();
    assert_eq!(got, want, "full range matches the model after recovery");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backend_refuses_incompatible_layouts() {
    let dir = tmpdir("file_layout_guard");
    {
        let db = SksDb::open(&dir, file_config(&dir, 4, 1024)).unwrap();
        let s = db.session();
        for k in 0..100u64 {
            s.insert(k, record_for(k)).unwrap();
        }
        db.checkpoint().unwrap(); // WAL now empty: the pages are the data
    }
    // Different partition count: the on-disk routing no longer matches.
    let err = SksDb::open(&dir, file_config(&dir, 2, 1024))
        .map(|_| ())
        .unwrap_err();
    assert!(format!("{err}").contains("partitions"), "got: {err}");
    let err = SksDb::open(&dir, file_config(&dir, 8, 1024))
        .map(|_| ())
        .unwrap_err();
    assert!(format!("{err}").contains("partitions"), "got: {err}");
    // Memory backend over a file-backed database: would ignore the pages.
    let err = SksDb::open(&dir, memory_config(4, 1024))
        .map(|_| ())
        .unwrap_err();
    assert!(format!("{err}").contains("file backend"), "got: {err}");
    // A damaged partition set must not be silently truncated and rebuilt.
    std::fs::remove_dir_all(dir.join("part-002")).unwrap();
    let err = SksDb::open(&dir, file_config(&dir, 4, 1024))
        .map(|_| ())
        .unwrap_err();
    assert!(
        format!("{err}").contains("missing or damaged"),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_database_upgrades_to_file_backend() {
    // A memory-backend database carries its whole state in the WAL, so
    // reopening the same directory with the file backend is a lossless
    // migration: full replay into fresh on-disk trees, tail replay after.
    let dir = tmpdir("upgrade");
    {
        let db = SksDb::open(&dir, memory_config(4, 512)).unwrap();
        let s = db.session();
        for k in 0..200u64 {
            s.insert(k, record_for(k)).unwrap();
        }
    }
    {
        let db = SksDb::open(&dir, file_config(&dir, 4, 512)).unwrap();
        assert_eq!(db.recovery_report().path, RecoveryPath::FullReplay);
        assert_eq!(db.len(), 200);
        db.checkpoint().unwrap();
    }
    {
        let db = SksDb::open(&dir, file_config(&dir, 4, 512)).unwrap();
        assert_eq!(db.recovery_report().path, RecoveryPath::TailReplay);
        assert_eq!(db.len(), 200);
        let s = db.session();
        for k in 0..200u64 {
            assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "key {k}");
        }
        // And the migrated database is now locked to the file backend.
        drop(s);
    }
    let err = SksDb::open(&dir, memory_config(4, 512))
        .map(|_| ())
        .unwrap_err();
    assert!(format!("{err}").contains("file backend"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn memory_backend_still_reopens_with_different_partition_count() {
    // The WAL replays per key through the router, so the memory backend
    // keeps its layout independence.
    let dir = tmpdir("memory_repartition");
    {
        let db = SksDb::open(&dir, memory_config(2, 512)).unwrap();
        let s = db.session();
        for k in 0..150u64 {
            s.insert(k, record_for(k)).unwrap();
        }
    }
    let db = SksDb::open(&dir, memory_config(6, 512)).unwrap();
    assert_eq!(db.len(), 150);
    db.validate().unwrap();
    let s = db.session();
    for k in 0..150u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "key {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn second_engine_on_same_directory_fails_closed() {
    // Two live engines on one directory would checkpoint over each
    // other's WAL and page stores by path; the directory flock turns
    // that into a clean open-time error — and releases with the holder,
    // so the directory is never wedged.
    let dir = tmpdir("dir_lock");
    let db = SksDb::open(&dir, config(2, 512)).unwrap();
    db.session().insert(1, b"one".to_vec()).unwrap();
    let err = SksDb::open(&dir, config(2, 512)).unwrap_err();
    assert!(
        err.to_string().contains("already open"),
        "second open must fail with the lock error, got: {err}"
    );
    // The failed open must not have damaged the live engine.
    assert_eq!(db.get(1).unwrap().unwrap(), b"one");
    drop(db);
    // Lock released with the holder: reopen works and data survives.
    let db = SksDb::open(&dir, config(2, 512)).unwrap();
    assert_eq!(db.get(1).unwrap().unwrap(), b"one");
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_runs_record_compaction_and_reclaims_space() {
    let dir = tmpdir("ckpt_compaction");
    const N: u64 = 400;
    // ~1 KiB records: a 4 KiB data page holds only a few, so the set
    // spans many blocks and delete churn leaves real garbage behind.
    let record_for = |k: u64| {
        let mut v = format!("big-record-{k:06}-").into_bytes();
        v.resize(1000, 0x5A);
        v
    };
    {
        let cfg = file_config(&dir, 2, N + 64);
        let db = SksDb::open(&dir, cfg).unwrap();
        let s = db.session();
        for k in 0..N {
            s.insert(k, record_for(k)).unwrap();
        }
        db.checkpoint().unwrap();
        // Delete-heavy churn leaves tombstoned data blocks behind.
        for k in (0..N).filter(|k| k % 4 != 0) {
            s.delete(k).unwrap();
        }
        let used_before: u32 = db
            .data_block_usage_per_partition()
            .iter()
            .map(|&(total, free)| total - free)
            .sum();
        // Checkpoints run the configured compaction budget per partition;
        // repeat until the garbage is gone.
        let mut freed = 0u64;
        for _ in 0..32 {
            db.checkpoint().unwrap();
            let r = db.last_compaction_report();
            assert_eq!(r.orphaned_records, 0);
            if r.freed_blocks == 0 && freed > 0 {
                break;
            }
            freed += r.freed_blocks;
        }
        assert!(
            freed > 0,
            "checkpoint-integrated compaction reclaimed blocks"
        );
        let used_after: u32 = db
            .data_block_usage_per_partition()
            .iter()
            .map(|&(total, free)| total - free)
            .sum();
        assert!(
            used_after < used_before,
            "live data-block footprint must shrink ({used_before} -> {used_after})"
        );
        db.validate().unwrap();
    }
    // The compacted image recovers: every live record survives, every
    // deleted one stays dead.
    let db = SksDb::open(&dir, file_config(&dir, 2, N + 64)).unwrap();
    db.validate().unwrap();
    let s = db.session();
    for k in 0..N {
        let got = s.get(k).unwrap();
        if k % 4 == 0 {
            assert_eq!(got.unwrap(), record_for(k), "live key {k}");
        } else {
            assert_eq!(got, None, "deleted key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manual_compact_reclaims_between_checkpoints() {
    let dir = tmpdir("manual_compact");
    let record_for = |k: u64| {
        let mut v = format!("manual-{k:06}-").into_bytes();
        v.resize(1000, 0x3C);
        v
    };
    let db = SksDb::open(&dir, config(2, 1024)).unwrap();
    let s = db.session();
    for k in 0..300u64 {
        s.insert(k, record_for(k)).unwrap();
    }
    for k in 0..300u64 {
        if k % 2 == 1 {
            s.delete(k).unwrap();
        }
    }
    let mut total = sks_core::CompactionReport::default();
    loop {
        let r = db.compact(64).unwrap();
        if r.freed_blocks == 0 {
            break;
        }
        total.absorb(r);
    }
    assert!(total.freed_blocks > 0);
    assert_eq!(total.orphaned_records, 0);
    db.validate().unwrap();
    for k in 0..300u64 {
        let got = s.get(k).unwrap();
        if k % 2 == 0 {
            assert_eq!(got.unwrap(), record_for(k), "key {k}");
        } else {
            assert_eq!(got, None, "key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_spreads_keys_across_partitions() {
    let dir = tmpdir("spread");
    let db = SksDb::open(&dir, config(8, 4096)).unwrap();
    let s = db.session();
    for k in 0..2000u64 {
        s.insert(k, vec![1]).unwrap();
    }
    // With 2000 keys over 8 hash partitions, a partition holding fewer
    // than 100 or more than 450 keys would mean the router is broken.
    let lens = db.partition_lens();
    assert_eq!(lens.len(), 8);
    assert_eq!(lens.iter().sum::<u64>(), 2000);
    for (i, &n) in lens.iter().enumerate() {
        assert!(
            (100..=450).contains(&n),
            "partition {i} holds {n} of 2000 keys"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
