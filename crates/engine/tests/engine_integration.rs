//! End-to-end engine tests: durability without checkpoints, torn-tail
//! recovery, checkpoint compaction, and concurrent sessions over a
//! partitioned tree.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use sks_core::{Scheme, SchemeConfig};
use sks_engine::{EngineConfig, SksDb};
use sks_storage::SyncPolicy;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sks_engine_it_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(partitions: usize, capacity: u64) -> EngineConfig {
    EngineConfig::new(SchemeConfig::with_capacity(Scheme::Oval, capacity).partitions(partitions))
}

fn record_for(k: u64) -> Vec<u8> {
    format!("record-{k:06}").into_bytes()
}

#[test]
fn recovery_reopens_everything_without_checkpoint() {
    let dir = tmpdir("recovery");
    const N: u64 = 500;
    {
        let db = SksDb::open(&dir, config(4, N + 64)).unwrap();
        let session = db.session();
        for k in 0..N {
            session.insert(k, record_for(k)).unwrap();
        }
        assert_eq!(db.len(), N);
        // Dropped without checkpoint or explicit flush: durability must
        // come from the per-commit WAL writes alone.
    }
    {
        let db = SksDb::open(&dir, config(4, N + 64)).unwrap();
        let report = db.recovery_report();
        assert!(!report.torn_tail);
        assert_eq!(report.records_replayed, N);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(db.len(), N);
        db.validate().unwrap();
        let session = db.session();
        for k in 0..N {
            assert_eq!(session.get(k).unwrap().unwrap(), record_for(k), "key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_deletes_and_overwrites() {
    let dir = tmpdir("replay_mutations");
    {
        let db = SksDb::open(&dir, config(2, 256)).unwrap();
        let s = db.session();
        for k in 0..100u64 {
            s.insert(k, record_for(k)).unwrap();
        }
        for k in (0..100u64).step_by(2) {
            s.delete(k).unwrap();
        }
        for k in (1..100u64).step_by(4) {
            s.insert(k, b"overwritten".to_vec()).unwrap();
        }
    }
    let db = SksDb::open(&dir, config(2, 256)).unwrap();
    let s = db.session();
    assert_eq!(db.len(), 50);
    for k in 0..100u64 {
        let got = s.get(k).unwrap();
        if k % 2 == 0 {
            assert_eq!(got, None, "deleted key {k}");
        } else if (k - 1) % 4 == 0 {
            assert_eq!(got.unwrap(), b"overwritten", "overwritten key {k}");
        } else {
            assert_eq!(got.unwrap(), record_for(k), "untouched key {k}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_wal_tail_recovers_prefix() {
    let dir = tmpdir("torn");
    const N: u64 = 300;
    let logical_len;
    {
        let db = SksDb::open(&dir, config(2, N + 64)).unwrap();
        let s = db.session();
        for k in 0..N {
            s.insert(k, record_for(k)).unwrap();
        }
        logical_len = db.wal_len_bytes();
    }
    // Truncate the WAL mid-record: a crash halfway through a write. The
    // stream starts after the FileDisk's fixed 8 KiB header, and cutting
    // 20 bytes before its logical end lands inside the last record (each
    // record here is 46 bytes).
    let wal_path = dir.join("wal.sks");
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    f.set_len(8192 + logical_len - 20).unwrap();
    drop(f);

    let db = SksDb::open(&dir, config(2, N + 64)).unwrap();
    let report = db.recovery_report();
    assert!(report.torn_tail, "truncation must be reported");
    let survived = report.records_replayed;
    assert!(
        survived < N && survived > 0,
        "a strict, non-empty prefix survives (got {survived})"
    );
    assert_eq!(db.len(), survived);
    db.validate().unwrap();
    // The surviving records are exactly the first `survived` inserts.
    let s = db.session();
    for k in 0..survived {
        assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "key {k}");
    }
    for k in survived..N {
        assert_eq!(s.get(k).unwrap(), None, "torn-off key {k}");
    }

    // And the recovered engine keeps accepting writes durably.
    for k in survived..N {
        s.insert(k, record_for(k)).unwrap();
    }
    drop(s);
    drop(db);
    let db = SksDb::open(&dir, config(2, N + 64)).unwrap();
    assert!(!db.recovery_report().torn_tail, "scrub left a clean log");
    assert_eq!(db.len(), N);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_compacts_wal_and_survives_reopen() {
    let dir = tmpdir("checkpoint");
    {
        let db = SksDb::open(&dir, config(4, 512)).unwrap();
        let s = db.session();
        // Heavy churn: every key rewritten 8 times then half deleted.
        for round in 0..8u64 {
            for k in 0..200u64 {
                s.insert(k, format!("round-{round}-{k}").into_bytes())
                    .unwrap();
            }
        }
        for k in (0..200u64).step_by(2) {
            s.delete(k).unwrap();
        }
        let before = db.wal_len_bytes();
        let live = db.checkpoint().unwrap();
        assert_eq!(live, 100);
        let after = db.wal_len_bytes();
        assert!(
            after < before / 4,
            "checkpoint must compact ({before} -> {after} bytes)"
        );
        // Post-checkpoint writes land in the fresh log.
        s.insert(499, b"post-checkpoint".to_vec()).unwrap();
    }
    let db = SksDb::open(&dir, config(4, 512)).unwrap();
    assert_eq!(db.len(), 101);
    let s = db.session();
    assert_eq!(s.get(499).unwrap().unwrap(), b"post-checkpoint");
    for k in (1..200u64).step_by(2) {
        assert_eq!(
            s.get(k).unwrap().unwrap(),
            format!("round-7-{k}").into_bytes()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_sessions_readers_and_writers() {
    let dir = tmpdir("concurrent");
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const PER_WRITER: u64 = 150;
    let db = SksDb::open(&dir, config(8, WRITERS as u64 * PER_WRITER + 64)).unwrap();

    // Pre-load half the key space so readers have something to find.
    let preload = db.session();
    for k in 0..(WRITERS as u64 * PER_WRITER) / 2 {
        preload.insert(k, record_for(k)).unwrap();
    }

    let barrier = Arc::new(Barrier::new(WRITERS + READERS));
    let read_hits = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let session = db.session();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let lo = w as u64 * PER_WRITER;
            barrier.wait();
            for k in lo..lo + PER_WRITER {
                session.insert(k, record_for(k)).unwrap();
            }
        }));
    }
    for r in 0..READERS {
        let session = db.session();
        let barrier = Arc::clone(&barrier);
        let read_hits = Arc::clone(&read_hits);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut hits = 0;
            for pass in 0..3u64 {
                for k in 0..WRITERS as u64 * PER_WRITER {
                    if let Some(v) = session
                        .get((k + r as u64 + pass) % (WRITERS as u64 * PER_WRITER))
                        .unwrap()
                    {
                        assert!(v.starts_with(b"record-"));
                        hits += 1;
                    }
                }
            }
            read_hits.fetch_add(hits, Ordering::Relaxed);
        }));
    }
    for h in handles {
        h.join().expect("no thread panics");
    }

    assert_eq!(db.len(), WRITERS as u64 * PER_WRITER);
    db.validate().unwrap();
    assert!(
        read_hits.load(Ordering::Relaxed) > 0,
        "readers observed live data during the write storm"
    );

    // Everything the concurrent writers logged must be recoverable.
    drop(preload);
    drop(db);
    let db = SksDb::open(&dir, config(8, WRITERS as u64 * PER_WRITER + 64)).unwrap();
    assert_eq!(db.len(), WRITERS as u64 * PER_WRITER);
    let s = db.session();
    for k in 0..WRITERS as u64 * PER_WRITER {
        assert_eq!(s.get(k).unwrap().unwrap(), record_for(k), "key {k}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn range_merges_across_partitions_in_key_order() {
    let dir = tmpdir("range");
    let db = SksDb::open(&dir, config(8, 1024)).unwrap();
    let s = db.session();
    let mut model = BTreeMap::new();
    // Scattered inserts so every partition holds some of the range.
    for k in (0..1000u64).step_by(3) {
        s.insert(k, record_for(k)).unwrap();
        model.insert(k, record_for(k));
    }
    let got = s.range(100, 700).unwrap();
    let want: Vec<(u64, Vec<u8>)> = model
        .range(100..=700)
        .map(|(&k, v)| (k, v.clone()))
        .collect();
    assert_eq!(got, want, "merged range must be in key order and complete");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn group_commit_amortises_fsyncs_across_sessions() {
    let dir = tmpdir("group");
    let cfg = config(4, 2048).sync(SyncPolicy::EveryN(16));
    let db = SksDb::open(&dir, cfg).unwrap();
    let s = db.session();
    for k in 0..320u64 {
        s.insert(k, record_for(k)).unwrap();
    }
    let snap = db.snapshot();
    assert_eq!(snap.wal_appends, 320);
    assert_eq!(
        snap.wal_fsyncs,
        320 / 16 + 1,
        "EveryN(16) group commit, +1 durable key-check sentinel"
    );
    // fsync-per-commit for comparison.
    let dir2 = tmpdir("group_always");
    let db2 = SksDb::open(&dir2, config(4, 2048).sync(SyncPolicy::Always)).unwrap();
    let s2 = db2.session();
    for k in 0..320u64 {
        s2.insert(k, record_for(k)).unwrap();
    }
    assert_eq!(db2.snapshot().wal_fsyncs, 320 + 1);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn out_of_domain_key_rejected_before_logging() {
    let dir = tmpdir("domain");
    let db = SksDb::open(&dir, config(4, 128)).unwrap();
    let s = db.session();
    let err = s.insert(u64::MAX, b"way out".to_vec()).unwrap_err();
    assert!(format!("{err}").contains("domain"), "got: {err}");
    assert_eq!(
        db.snapshot().wal_appends,
        0,
        "doomed op must not reach the WAL"
    );
    assert_eq!(db.len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_spreads_keys_across_partitions() {
    let dir = tmpdir("spread");
    let db = SksDb::open(&dir, config(8, 4096)).unwrap();
    let s = db.session();
    for k in 0..2000u64 {
        s.insert(k, vec![1]).unwrap();
    }
    // With 2000 keys over 8 hash partitions, a partition holding fewer
    // than 100 or more than 450 keys would mean the router is broken.
    let lens = db.partition_lens();
    assert_eq!(lens.len(), 8);
    assert_eq!(lens.iter().sum::<u64>(), 2000);
    for (i, &n) in lens.iter().enumerate() {
        assert!(
            (100..=450).contains(&n),
            "partition {i} holds {n} of 2000 keys"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
