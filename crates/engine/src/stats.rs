//! The first-class stats surface: one [`StatsSnapshot`] per
//! [`crate::SksDb::stats`] call, carrying the logical paper counters,
//! per-op latency histograms (per partition and merged), the stage-
//! attributed write-path breakdown and the space-governance picture —
//! serialisable to JSON with no dependencies (hand-rolled, in
//! `bench_report`'s style).
//!
//! Privacy contract: nothing in a snapshot derives from key or value
//! *bytes* — only counts, byte lengths, durations and block/partition
//! indices. The attack sweep pins this down by grepping the JSON and the
//! rendered flight-recorder events for planted plaintext.

use sks_core::CompactionReport;
use sks_storage::{HistogramSnapshot, ObsLevel, OpSnapshot, Stage};

/// Operation labels, in the order histograms are kept per partition
/// (`range` and `txn` are engine-wide: a range scan crosses every
/// partition and an explicit transaction commit may span several).
pub const OPS: [&str; 6] = ["get", "put", "delete", "range", "batch", "txn"];

/// The stages whose sum is the *write-path breakdown*: every other stage
/// ([`Stage::BlockRead`]/[`Stage::BlockWrite`]/[`Stage::StoreFsync`],
/// [`Stage::WalSwap`] — which nests inside the WAL stages' device writes —
/// and the compaction and checkpoint passes) either nests inside one of
/// these or runs off the client path, so summing only these six never
/// counts a nanosecond twice. `SealBatch` is the group-commit seal at the
/// commit boundary, disjoint from both `WalAppend` (staging) and
/// `WalFsync` (the barrier).
pub const WRITE_PATH_STAGES: [Stage; 6] = [
    Stage::RecordSeal,
    Stage::WalAppend,
    Stage::SealBatch,
    Stage::WalFsync,
    Stage::NodeSeal,
    Stage::NodeUnseal,
];

/// Per-partition slice of the stats surface.
#[derive(Debug, Clone)]
pub struct PartitionStats {
    /// Keys currently stored in this partition.
    pub len: u64,
    /// Dirty pages pinned in this partition's buffer pool (file backend).
    pub dirty_pages: usize,
    /// Latency histograms by op, [`OPS`] order. Empty histograms (op
    /// never ran, or observability below `Histograms`) have `count == 0`.
    pub ops: Vec<(&'static str, HistogramSnapshot)>,
}

/// Everything [`crate::SksDb::stats`] reports, at one instant.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Observability level the engine is running at.
    pub level: ObsLevel,
    /// The logical paper counters (byte-identical at every level).
    pub counters: OpSnapshot,
    /// Per-op latency histograms merged across partitions, [`OPS`] order.
    pub ops: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-partition breakdown.
    pub partitions: Vec<PartitionStats>,
    /// Stage-attributed timing histograms (all [`Stage::ALL`] present;
    /// empty below `Histograms`).
    pub stages: Vec<(Stage, HistogramSnapshot)>,
    /// Current logical WAL length in bytes.
    pub wal_len_bytes: u64,
    /// Records held by the process-wide decoded-record cache, when
    /// configured.
    pub shared_record_cache_len: Option<usize>,
    /// What the most recent checkpoint's compaction passes reclaimed.
    pub last_compaction: CompactionReport,
}

impl StatsSnapshot {
    /// Merged histogram for one op name.
    pub fn op(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.ops.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Timing histogram for one stage.
    pub fn stage(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, h)| h)
    }

    /// Total nanoseconds attributed to one stage.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage(stage).map(|h| h.sum).unwrap_or(0)
    }

    /// Total nanoseconds attributed to the write path — the sum of
    /// [`WRITE_PATH_STAGES`], each nanosecond counted once.
    pub fn write_path_ns(&self) -> u64 {
        WRITE_PATH_STAGES.iter().map(|&s| self.stage_ns(s)).sum()
    }

    /// Buffer-pool hit ratio in `[0, 1]` (`None` before any probe).
    pub fn pool_hit_ratio(&self) -> Option<f64> {
        ratio(self.counters.cache_hits, self.counters.cache_misses)
    }

    /// Plaintext node-cache hit ratio in `[0, 1]`.
    pub fn node_cache_hit_ratio(&self) -> Option<f64> {
        ratio(
            self.counters.node_cache_hits,
            self.counters.node_cache_misses,
        )
    }

    /// Decoded-record cache hit ratio in `[0, 1]`.
    pub fn record_cache_hit_ratio(&self) -> Option<f64> {
        ratio(
            self.counters.record_cache_hits,
            self.counters.record_cache_misses,
        )
    }

    /// The whole snapshot as a JSON document (no external dependencies;
    /// stable key order, so goldens and `grep` both work).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"level\": \"{}\",\n", self.level.name()));
        out.push_str(&format!("  \"wal_len_bytes\": {},\n", self.wal_len_bytes));
        match self.shared_record_cache_len {
            Some(n) => out.push_str(&format!("  \"shared_record_cache_len\": {n},\n")),
            None => out.push_str("  \"shared_record_cache_len\": null,\n"),
        }

        out.push_str("  \"counters\": {");
        let fields = self.counters.fields();
        for (i, (name, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n");

        out.push_str("  \"ops\": {");
        for (i, (name, h)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": "));
            push_hist(&mut out, h);
        }
        out.push_str("\n  },\n");

        out.push_str("  \"stages\": {");
        for (i, (stage, h)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": ", stage.name()));
            push_hist(&mut out, h);
        }
        out.push_str("\n  },\n");

        out.push_str(&format!(
            "  \"write_path\": {{ \"total_ns\": {}, \"stages\": [",
            self.write_path_ns()
        ));
        for (i, stage) in WRITE_PATH_STAGES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{ \"stage\": \"{}\", \"ns\": {} }}",
                stage.name(),
                self.stage_ns(*stage)
            ));
        }
        out.push_str("] },\n");

        let c = &self.last_compaction;
        out.push_str(&format!(
            "  \"last_compaction\": {{ \"moved_records\": {}, \"freed_blocks\": {}, \
             \"orphaned_records\": {}, \"orphans_collected\": {}, \"sweep_slots\": {}, \
             \"moved_nodes\": {}, \"node_blocks_truncated\": {}, \"data_blocks_truncated\": {} }},\n",
            c.moved_records,
            c.freed_blocks,
            c.orphaned_records,
            c.orphans_collected,
            c.sweep_slots,
            c.moved_nodes,
            c.node_blocks_truncated,
            c.data_blocks_truncated,
        ));

        out.push_str("  \"partitions\": [");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{ \"len\": {}, \"dirty_pages\": {}, \"ops\": {{",
                p.len, p.dirty_pages
            ));
            for (j, (name, h)) in p.ops.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": "));
                push_hist(&mut out, h);
            }
            out.push_str("} }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn ratio(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

fn push_hist(out: &mut String, h: &HistogramSnapshot) {
    out.push_str(&format!(
        "{{ \"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {} }}",
        h.count,
        h.sum,
        h.p50(),
        h.p90(),
        h.p99(),
        h.max,
        h.mean()
    ));
}
