//! # sks-engine — a concurrent, WAL-backed database engine over the
//! enciphered B-tree
//!
//! Hardjono & Seberry's point is that search-key substitution happens
//! *after* the B-tree's shape is fixed, so an unmodified DBMS can run on
//! top of the enciphered index. This crate supplies that DBMS-shaped
//! machinery around the single-threaded [`sks_core::EncipheredBTree`]:
//!
//! * [`db`] — [`SksDb`]: the key space sharded over N `RwLock`ed tree
//!   partitions (concurrent readers, per-partition serialized writers)
//!   with a router that hashes the *disguised* key, and the per-client
//!   [`Session`] handle.
//! * [`wal`] — the write-ahead log layered on `sks-storage`'s
//!   [`sks_storage::FileDisk`]: CRC-framed records with sealed bodies (the
//!   log is the only durable state, so it must leak no keys or values),
//!   group commit under a [`sks_storage::SyncPolicy`], torn-tail detection
//!   and scrubbing.
//! * [`recovery`] — replay of the log into the partitions on open, with a
//!   [`RecoveryReport`] describing what was found and which
//!   [`RecoveryPath`] was taken (full replay for memory-backed trees,
//!   tail-only replay for checkpointed file-backed trees).
//! * [`txn`] — [`Txn`]: explicit multi-key transactions with snapshot
//!   reads (never blocking writers) and atomic cross-partition commits —
//!   one WAL commit frame, partition write locks taken in the global
//!   ascending order. Plain session mutations are implicit autocommit
//!   transactions through the same commit sequence.
//! * [`error`] — [`EngineError`].
//!
//! The backing store for the trees themselves is pluggable through
//! [`sks_core::StorageBackend`]: `Memory` reproduces the paper's
//! simulated-device experiments (durability via full log replay), while
//! `File` puts the enciphered node/record pages on disk behind a no-steal
//! buffer pool, turning checkpoints into page flushes + log truncation
//! and restarts into O(tail) instead of O(dataset).
//!
//! ```
//! use sks_core::{Scheme, SchemeConfig};
//! use sks_engine::{EngineConfig, SksDb};
//!
//! let dir = std::env::temp_dir().join(format!("sks_engine_doc_{}", std::process::id()));
//! let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096).partitions(4);
//! let db = SksDb::open(&dir, EngineConfig::new(scheme)).unwrap();
//! let session = db.session();
//! session.insert(42, b"answer".to_vec()).unwrap();
//! assert_eq!(session.get(42).unwrap().unwrap(), b"answer");
//! # drop(session); drop(db); std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! **Security warning:** like the rest of the workspace this reproduces a
//! 1990 paper; the ciphers are historical. Do not store real secrets.

pub mod db;
pub mod error;
pub mod recovery;
pub mod stats;
pub mod txn;
pub mod wal;

pub use db::{EngineConfig, Session, SksDb};
pub use error::EngineError;
pub use recovery::{RecoveryPath, RecoveryReport};
pub use stats::{PartitionStats, StatsSnapshot, OPS, WRITE_PATH_STAGES};
pub use txn::Txn;
pub use wal::{EngineWalDisk, SyncTicket, Wal, WalDevice, WalOp, WalRecord, WalReplay};

// The observability vocabulary the stats surface speaks, re-exported so
// engine users never need a direct sks-storage dependency.
pub use sks_storage::{Event, EventKind, HistogramSnapshot, ObsLevel, Stage};
