//! Engine error type.

use sks_core::CoreError;
use sks_storage::StorageError;

/// Errors from the engine: WAL I/O, recovery, or the underlying tree.
#[derive(Debug)]
pub enum EngineError {
    /// Underlying enciphered-tree failure.
    Core(CoreError),
    /// Block-device failure (WAL segments live on a `FileDisk`).
    Storage(StorageError),
    /// Filesystem-level failure outside the block device (rename, stat).
    Io(std::io::Error),
    /// An earlier append-path I/O error left the WAL in an unknown state;
    /// the handle fail-stops and the database must be reopened (recovery
    /// replays the log back to a consistent prefix).
    WalPoisoned,
    /// Invalid engine configuration.
    Config(String),
    /// First-committer-wins validation failed: another commit overwrote
    /// one of this transaction's written keys after its snapshot was
    /// taken. Retry by beginning a fresh transaction. Carries the
    /// conflicting key and its partition (the same context the flight
    /// recorder's `txn_conflict` event records, minus the key — events
    /// never carry key material, but the error goes only to the client
    /// that owns the data).
    Conflict { key: u64, partition: usize },
    /// The transaction was already committed or aborted; no further
    /// operations are accepted on it.
    TxnAborted,
    /// A commit attempt failed mid-flight (WAL error, poisoned log), so
    /// the transaction's effects are unknown until reopen; the handle
    /// fail-stops rather than allowing a retry that could double-apply.
    TxnPoisoned,
    /// An error from a maintenance pass (checkpoint, compaction) with a
    /// flight-recorder dump attached: the rendered tail of recent events
    /// leading up to the failure. `Display` includes the source message,
    /// so callers matching on error text are unaffected.
    Traced {
        source: Box<EngineError>,
        trace: String,
    },
}

impl EngineError {
    /// Attaches a flight-recorder dump to an error (no-op text when the
    /// recorder was empty or observability is off).
    pub(crate) fn with_trace(self, trace: String) -> EngineError {
        EngineError::Traced {
            source: Box::new(self),
            trace,
        }
    }

    /// The flight-recorder dump attached to this error, if any.
    pub fn trace(&self) -> Option<&str> {
        match self {
            EngineError::Traced { trace, .. } => Some(trace),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "tree error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Io(e) => write!(f, "io error: {e}"),
            EngineError::WalPoisoned => write!(
                f,
                "wal poisoned by an earlier I/O error; reopen the database to recover"
            ),
            EngineError::Config(msg) => write!(f, "engine config: {msg}"),
            EngineError::Conflict { key, partition } => write!(
                f,
                "transaction conflict: key {key} (partition {partition}) was \
                 committed by another transaction after this snapshot; retry"
            ),
            EngineError::TxnAborted => write!(
                f,
                "transaction already finished (committed or aborted); begin a new one"
            ),
            EngineError::TxnPoisoned => write!(
                f,
                "transaction poisoned by a failed commit; its effects are \
                 unknown until the database is reopened"
            ),
            EngineError::Traced { source, .. } => write!(f, "{source}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Traced { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}
