//! [`SksDb`] — the concurrent, WAL-backed engine over enciphered B-trees.
//!
//! Architecture (one paragraph): the key space is sharded across `N`
//! independent [`EncipheredBTree`] partitions, each behind its own
//! `RwLock`, so point reads run concurrently everywhere and writers
//! serialize only within a partition. The router hashes the *disguised*
//! key — the same `f(k)` the paper writes to disk — so even the
//! partition-assignment pattern an opponent could observe carries no key
//! order. Every mutation is appended to a shared write-ahead log (one
//! `Mutex`, group commit per [`SyncPolicy`]) *before* it touches the tree,
//! and recovery replays the log through the identical router path.
//!
//! Lock order is always `partition.write → wal.lock`, and reads take no
//! WAL lock at all. Range scans visit partitions one at a time and merge,
//! so they see a per-partition-consistent (not globally snapshot) view —
//! the classic read-committed engine contract.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use sks_core::{EncipheredBTree, KeyDisguise, SchemeConfig};
use sks_storage::{OpCounters, OpSnapshot, SyncPolicy};

use crate::error::EngineError;
use crate::recovery::{apply_replay, RecoveryReport};
use crate::wal::Wal;

/// Engine-level configuration wrapping the paper-level [`SchemeConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheme, capacity and `partitions` knob for every tree partition.
    pub scheme: SchemeConfig,
    /// Commit durability (see [`SyncPolicy`]); default is group commit.
    pub sync: SyncPolicy,
    /// Block size of the WAL's backing [`sks_storage::FileDisk`].
    pub wal_block_size: usize,
}

impl EngineConfig {
    pub fn new(scheme: SchemeConfig) -> Self {
        EngineConfig {
            scheme,
            sync: SyncPolicy::default(),
            wal_block_size: 4096,
        }
    }

    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Key sealing the WAL's record bodies: derived from the scheme's
    /// independent data-block key (§5) with a domain-separation tweak, so
    /// log and data blocks never share keystream.
    fn wal_key(&self) -> u128 {
        self.scheme.data_key
            ^ 0x57414C_u128.rotate_left(96)
            ^ ((self.scheme.tree_key as u128) << 32)
    }
}

/// Routes keys to partitions by hashing the disguised key.
pub(crate) struct Router {
    disguise: Option<Arc<dyn KeyDisguise>>,
    n: usize,
}

impl Router {
    fn new(config: &SchemeConfig, counters: &OpCounters) -> Result<Self, EngineError> {
        Ok(Router {
            disguise: config.build_disguise(counters)?,
            n: config.partitions,
        })
    }

    /// splitmix64 finalizer — decorrelates partition choice from the
    /// disguised value's residue structure.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    pub(crate) fn partition_of(&self, key: u64) -> Result<usize, EngineError> {
        // Disguise even when unsharded: this doubles as the domain check
        // that keeps doomed (out-of-domain) operations out of the WAL.
        let routed = match &self.disguise {
            Some(d) => d.disguise(key).map_err(|e| {
                EngineError::Core(sks_core::CoreError::Config(format!(
                    "key {key} outside configured domain: {e}"
                )))
            })?,
            None => key,
        };
        if self.n == 1 {
            return Ok(0);
        }
        Ok((Self::mix(routed) % self.n as u64) as usize)
    }
}

/// The engine. Cheap to share (`Arc`); one instance per database
/// directory.
pub struct SksDb {
    partitions: Vec<RwLock<EncipheredBTree>>,
    router: Router,
    wal: Mutex<Wal>,
    counters: OpCounters,
    recovery: RecoveryReport,
    wal_path: PathBuf,
    config: EngineConfig,
}

const WAL_FILE: &str = "wal.sks";

impl SksDb {
    /// Opens (or creates) the database in `dir`. If a WAL exists its
    /// intact records are replayed; a torn tail is detected, reported via
    /// [`SksDb::recovery_report`], and scrubbed.
    pub fn open<P: AsRef<Path>>(dir: P, config: EngineConfig) -> Result<Arc<Self>, EngineError> {
        if config.scheme.partitions == 0 {
            return Err(EngineError::Config("partitions must be >= 1".into()));
        }
        std::fs::create_dir_all(&dir)?;
        let wal_path = dir.as_ref().join(WAL_FILE);

        let counters = OpCounters::new();
        let router = Router::new(&config.scheme, &counters)?;
        let mut partitions = Vec::with_capacity(config.scheme.partitions);
        for _ in 0..config.scheme.partitions {
            partitions.push(EncipheredBTree::create_in_memory_with_counters(
                config.scheme.clone(),
                counters.clone(),
            )?);
        }

        let (wal, recovery) = if wal_path.exists() {
            let (wal, replay) =
                Wal::open(&wal_path, config.wal_key(), config.sync, counters.clone())?;
            let report = apply_replay(&mut partitions, &router, replay)?;
            (wal, report)
        } else {
            let wal = Wal::create(
                &wal_path,
                config.wal_block_size,
                config.wal_key(),
                config.sync,
                counters.clone(),
            )?;
            // The file's directory entry must be durable too, or a crash
            // could leave a database directory with no log at all.
            sync_dir(dir.as_ref())?;
            (wal, RecoveryReport::default())
        };

        Ok(Arc::new(SksDb {
            partitions: partitions.into_iter().map(RwLock::new).collect(),
            router,
            wal: Mutex::new(wal),
            counters,
            recovery,
            wal_path,
            config,
        }))
    }

    /// A session handle for one logical client. Sessions are cheap clones
    /// of the shared engine and are `Send`, one per thread.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            db: Arc::clone(self),
        }
    }

    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Aggregated operation counters across WAL and every partition.
    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    pub fn len(&self) -> u64 {
        self.partition_lens().iter().sum()
    }

    /// Per-partition key counts (router balance observability).
    pub fn partition_lens(&self) -> Vec<u64> {
        self.partitions
            .iter()
            .map(|p| p.read().expect("partition lock").len())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current logical size of the WAL in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.lock().expect("wal lock").len_bytes()
    }

    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        let p = self.router.partition_of(key)?;
        let tree = self.partitions[p].read().expect("partition lock");
        Ok(tree.get(key)?)
    }

    /// Inserts (or replaces) the record under `key`.
    ///
    /// Failure semantics: an error from the WAL *commit* step (e.g. an
    /// fsync failure) leaves the operation's outcome indeterminate — the
    /// record may already sit durably in the log even though the error
    /// was returned. The WAL fail-stops on such errors (every later write
    /// returns [`EngineError::WalPoisoned`]); reopening the database
    /// replays the log and decides the final outcome, exactly as a crash
    /// at commit time would.
    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<Option<Vec<u8>>, EngineError> {
        let p = self.router.partition_of(key)?;
        let mut tree = self.partitions[p].write().expect("partition lock");
        {
            let mut wal = self.wal.lock().expect("wal lock");
            wal.append_insert(key, &value)?;
            wal.commit()?;
        }
        Ok(tree.insert(key, value)?)
    }

    /// Removes `key`. Same commit-failure semantics as [`SksDb::insert`].
    pub fn delete(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        let p = self.router.partition_of(key)?;
        let mut tree = self.partitions[p].write().expect("partition lock");
        {
            let mut wal = self.wal.lock().expect("wal lock");
            wal.append_delete(key)?;
            wal.commit()?;
        }
        Ok(tree.delete(key)?)
    }

    /// Range scan `lo..=hi` across all partitions, merged in key order.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        let mut out = Vec::new();
        for part in &self.partitions {
            let tree = part.read().expect("partition lock");
            out.extend(tree.range(lo, hi)?);
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }

    /// Forces every pending WAL byte to stable storage.
    pub fn flush(&self) -> Result<(), EngineError> {
        self.wal.lock().expect("wal lock").flush()
    }

    /// Structural validation of every partition.
    pub fn validate(&self) -> Result<(), EngineError> {
        for part in &self.partitions {
            part.read().expect("partition lock").validate()?;
        }
        Ok(())
    }

    /// Compacts the WAL: snapshots the current contents as a fresh run of
    /// insert records in a new log, atomically renames it over the old
    /// one, and resumes logging there. Returns the number of live records
    /// written. After a checkpoint, recovery replays only live state.
    pub fn checkpoint(&self) -> Result<u64, EngineError> {
        // Write lock every partition (index order — the only multi-
        // partition lock site, so no ordering conflicts), freezing a
        // consistent global state.
        let guards: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.write().expect("partition lock"))
            .collect();
        let mut wal = self.wal.lock().expect("wal lock");

        let tmp_path = self.wal_path.with_extension("tmp");
        // Detached counters while the snapshot is written: the internal
        // rewrite is not client traffic and must not inflate
        // wal_appends/wal_bytes.
        let mut fresh = Wal::create(
            &tmp_path,
            self.config.wal_block_size,
            self.config.wal_key(),
            self.config.sync,
            OpCounters::new(),
        )?;
        // Stream the snapshot in bounded key windows so peak memory is one
        // window per step, not a full-partition clone held while every
        // write lock is stalled. Keys live in `0..=capacity` by
        // construction (SchemeConfig's domain), so the sweep terminates.
        const WINDOW: u64 = 4096;
        let max_key = self.config.scheme.capacity;
        let mut written = 0u64;
        for guard in &guards {
            let mut lo = 0u64;
            loop {
                let hi = lo.saturating_add(WINDOW - 1).min(max_key);
                for (key, value) in guard.range(lo, hi)? {
                    fresh.append_insert(key, &value)?;
                    written += 1;
                }
                if hi >= max_key {
                    break;
                }
                lo = hi + 1;
            }
        }
        fresh.flush()?;
        std::fs::rename(&tmp_path, &self.wal_path)?;
        // fsync the directory: without it the rename itself is not
        // durable, and a power failure could revert to the old log even
        // though later commits fsynced the new inode's data.
        sync_dir(self.wal_path.parent().expect("wal lives in the db dir"))?;
        // The fresh Wal's file handle survives the rename (same inode);
        // from here on it carries client traffic, so it re-adopts the
        // engine's shared counters.
        fresh.adopt_counters(self.counters.clone());
        *wal = fresh;
        Ok(written)
    }
}

/// Makes directory-entry mutations (create, rename) durable.
fn sync_dir(dir: &Path) -> Result<(), EngineError> {
    // Opening a directory for fsync is a unix concept; on Windows
    // directory entries are synced with the volume and File::open on a
    // directory fails outright, so this is a no-op there.
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

impl std::fmt::Debug for SksDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SksDb")
            .field("partitions", &self.partitions.len())
            .field("scheme", &self.config.scheme.scheme)
            .field("wal_path", &self.wal_path)
            .finish()
    }
}

/// Per-client handle: a cheap, `Send` clone of the shared engine. The
/// unmodified-DBMS fiction of the paper maps here: a session speaks plain
/// `get/insert/delete/range` over plaintext keys and never sees disguises,
/// seals, partitions or the log.
#[derive(Clone, Debug)]
pub struct Session {
    db: Arc<SksDb>,
}

impl Session {
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.get(key)
    }

    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.insert(key, value)
    }

    pub fn delete(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.delete(key)
    }

    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        self.db.range(lo, hi)
    }

    pub fn db(&self) -> &Arc<SksDb> {
        &self.db
    }
}

// Sessions are handed to worker threads; the engine is shared behind Arc.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SksDb>();
    assert_send_sync::<Session>();
};
