//! [`SksDb`] — the concurrent, WAL-backed engine over enciphered B-trees.
//!
//! Architecture (one paragraph): the key space is sharded across `N`
//! independent [`EncipheredBTree`] partitions, each behind its own
//! `RwLock`, so point reads run concurrently everywhere and writers
//! serialize only within a partition. The router hashes the *disguised*
//! key — the same `f(k)` the paper writes to disk — so even the
//! partition-assignment pattern an opponent could observe carries no key
//! order. Every mutation is appended to a shared write-ahead log (one
//! `Mutex`, group commit per [`SyncPolicy`]) *before* it touches the tree,
//! and recovery replays the log through the identical router path.
//!
//! Lock order is always `partition.write (ascending partition id) →
//! wal.lock`, and reads take no WAL lock at all. Range scans visit
//! partitions one at a time and merge, so they see a
//! per-partition-consistent (not globally snapshot) view — the classic
//! read-committed engine contract.
//!
//! Since PR 9 every mutation is a transaction. The plain
//! `insert/delete/insert_batch/bulk_load` entry points are *implicit
//! autocommit* transactions: one WAL group + one tree apply under the
//! partition lock, with counters and framing byte-identical to the
//! pre-transaction engine. Explicit multi-key transactions
//! ([`Session::begin`] → [`crate::Txn`]) buffer their writes and run the
//! same commit sequence once, over every written partition's lock (taken
//! in the global ascending order — that is what makes cross-partition
//! commit deadlock-free) with **one** atomic WAL commit frame. Snapshot
//! reads rewind the current trees through the `TxnManager`
//! undo overlay, so they never block writers. See `txn.rs` for the
//! isolation model.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

use sks_core::{
    CompactionReport, EncipheredBTree, KeyDisguise, SchemeConfig, SharedRecordCache, StorageBackend,
};
use sks_storage::{
    Event, EventKind, Histogram, OpCounters, OpSnapshot, Stage, SyncPolicy, NO_PARTITION,
};

use crate::error::EngineError;
use crate::recovery::{apply_replay, RecoveryPath, RecoveryReport};
use crate::stats::{PartitionStats, StatsSnapshot};
use crate::txn::{KeyPriors, Txn, TxnManager};
use crate::wal::{EngineWalDisk, SyncTicket, Wal, WalOp};

use std::collections::BTreeMap;

/// Engine-level configuration wrapping the paper-level [`SchemeConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheme, capacity and `partitions` knob for every tree partition.
    pub scheme: SchemeConfig,
    /// Commit durability (see [`SyncPolicy`]); default is group commit.
    pub sync: SyncPolicy,
    /// Block size of the WAL's backing [`sks_storage::FileDisk`].
    pub wal_block_size: usize,
    /// Overlap group-commit fsyncs with sealing the next group: when the
    /// WAL pipeline is on, a policy-mandated fsync runs on the writer
    /// thread while the committing thread waits outside the WAL lock, so
    /// another partition's commit can seal meanwhile. Every durability
    /// barrier holds — a write is acknowledged only after its fsync
    /// completes. Default on; turn off to force inline fsyncs.
    pub overlap: bool,
    /// Memory backend only: checkpoint by re-streaming *only* the
    /// partitions mutated since their last snapshot file, so checkpoint
    /// cost is O(changed partitions) instead of O(dataset). Off forces
    /// every partition to re-stream each checkpoint (the full-rewrite
    /// cost, kept as a comparison baseline); durability is identical
    /// either way. Default on.
    pub incremental_checkpoints: bool,
    /// Fault-injection plan for the engine's WAL device. `None` (the
    /// default, and the only production setting) runs the WAL directly on
    /// its [`sks_storage::FileDisk`]; `Some(plan)` wraps every WAL the
    /// engine builds — including the fresh log each checkpoint cuts to —
    /// in a [`sks_storage::FailStore`] sharing that plan, so the
    /// op-sequence fuzzer can kill the process at any write or fsync and
    /// drive recovery through the exact production path.
    #[doc(hidden)]
    pub wal_fault: Option<sks_storage::FailPlan>,
}

impl EngineConfig {
    pub fn new(scheme: SchemeConfig) -> Self {
        EngineConfig {
            scheme,
            sync: SyncPolicy::default(),
            wal_block_size: 4096,
            overlap: true,
            incremental_checkpoints: true,
            wal_fault: None,
        }
    }

    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Sets [`EngineConfig::overlap`].
    pub fn overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Sets [`EngineConfig::incremental_checkpoints`].
    pub fn incremental_checkpoints(mut self, on: bool) -> Self {
        self.incremental_checkpoints = on;
        self
    }

    /// Sets [`EngineConfig::wal_fault`] — fuzz/crash probes only.
    #[doc(hidden)]
    pub fn wal_fault(mut self, plan: sks_storage::FailPlan) -> Self {
        self.wal_fault = Some(plan);
        self
    }

    /// Key sealing the WAL's record bodies: derived from the scheme's
    /// independent data-block key (§5) with a domain-separation tweak, so
    /// log and data blocks never share keystream. Public (but hidden) so
    /// crash probes can build a [`Wal`] over a fault-injecting device
    /// with the exact key the engine would use.
    #[doc(hidden)]
    pub fn wal_key(&self) -> u128 {
        self.scheme.data_key
            ^ 0x57414C_u128.rotate_left(96)
            ^ ((self.scheme.tree_key as u128) << 32)
    }
}

/// Routes keys to partitions by hashing the disguised key.
pub(crate) struct Router {
    disguise: Option<Arc<dyn KeyDisguise>>,
    n: usize,
}

impl Router {
    fn new(config: &SchemeConfig, counters: &OpCounters) -> Result<Self, EngineError> {
        Ok(Router {
            disguise: config.build_disguise(counters)?,
            n: config.partitions,
        })
    }

    /// splitmix64 finalizer — decorrelates partition choice from the
    /// disguised value's residue structure.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    pub(crate) fn partition_of(&self, key: u64) -> Result<usize, EngineError> {
        // Disguise even when unsharded: this doubles as the domain check
        // that keeps doomed (out-of-domain) operations out of the WAL.
        let routed = match &self.disguise {
            Some(d) => d.disguise(key).map_err(|e| {
                EngineError::Core(sks_core::CoreError::Config(format!(
                    "key {key} outside configured domain: {e}"
                )))
            })?,
            None => key,
        };
        if self.n == 1 {
            return Ok(0);
        }
        Ok((Self::mix(routed) % self.n as u64) as usize)
    }
}

/// What the single background governance worker should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AutoJob {
    /// Full fuzzy checkpoint (per-partition dirty high-water breach).
    Checkpoint,
    /// Flush only the dirtiest partition's pages (process-wide dirty
    /// budget breach).
    FlushDirtiest,
}

/// Per-partition client-op latency histograms. Allocated up front;
/// recording is lock-free and happens only at `Histograms` and above
/// (below that, no clock is even read).
struct OpHist {
    get: Histogram,
    put: Histogram,
    delete: Histogram,
    batch: Histogram,
}

impl OpHist {
    fn new() -> Self {
        OpHist {
            get: Histogram::new(),
            put: Histogram::new(),
            delete: Histogram::new(),
            batch: Histogram::new(),
        }
    }
}

/// The engine. Cheap to share (`Arc`); one instance per database
/// directory.
pub struct SksDb {
    partitions: Vec<RwLock<EncipheredBTree>>,
    router: Router,
    wal: Mutex<Wal<EngineWalDisk>>,
    counters: OpCounters,
    /// Per-partition get/put/delete/batch latency histograms.
    op_hist: Vec<OpHist>,
    /// Range-scan latency (a range crosses every partition, so it gets
    /// one engine-wide histogram instead of a per-partition slot).
    range_hist: Histogram,
    /// Explicit-transaction commit latency (a txn may span partitions, so
    /// engine-wide like `range_hist`).
    txn_hist: Histogram,
    /// Commit epochs, live snapshots and the undo-version overlay backing
    /// snapshot reads and first-committer-wins validation.
    txns: TxnManager,
    recovery: RecoveryReport,
    wal_path: PathBuf,
    config: EngineConfig,
    /// Serialises whole checkpoints against each other (manual and
    /// background); readers and writers are *not* behind this lock.
    checkpoint_serial: Mutex<()>,
    /// Per-partition mutation epoch: bumped under the partition write
    /// lock on every logically mutating operation. A checkpoint compares
    /// it against [`SksDb::snap_epochs`] to find the partitions whose
    /// snapshot must be re-streamed.
    partition_epochs: Vec<AtomicU64>,
    /// The mutation epoch each partition's on-disk snapshot file
    /// (`snap-NNN.sks`) captured; `None` means no trusted snapshot (the
    /// next checkpoint must write one). Reset to all-`None` at open, so
    /// the first checkpoint of every process re-establishes — and thereby
    /// re-verifies — every snapshot.
    snap_epochs: Mutex<Vec<Option<u64>>>,
    /// What the most recent checkpoint's compaction passes reclaimed.
    last_compaction: Mutex<CompactionReport>,
    /// Handle back to the owning `Arc`, so a dirty high-water breach can
    /// hand a background thread its own reference to the engine.
    self_ref: Weak<SksDb>,
    /// The process-wide decoded-record cache shared by every partition
    /// (None when `SchemeConfig::global_record_cache` is 0).
    shared_record_cache: Option<SharedRecordCache>,
    /// Mutation counter throttling the global-budget probe (the budget is
    /// a soft bound; probing every mutation would put an O(partitions)
    /// read-lock sweep on the hot path).
    governance_tick: AtomicU64,
    /// At most one background checkpoint in flight.
    auto_ckpt_running: AtomicBool,
    auto_ckpt_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    auto_ckpt_error: Mutex<Option<String>>,
    /// Exclusive advisory lock on the database directory, held for the
    /// engine's lifetime. A second engine opening the same directory
    /// would checkpoint over this one's WAL and page stores by path and
    /// silently corrupt it; the kernel lock (released automatically even
    /// on SIGKILL) makes that a clean open-time error instead.
    _dir_lock: std::fs::File,
}

const WAL_FILE: &str = "wal.sks";
const META_FILE: &str = "engine.sks";
const LOCK_FILE: &str = "engine.lock";
const META_MAGIC: &[u8; 8] = b"SKSENGN1";
const META_VERSION: u32 = 1;

/// Persisted engine layout: the facts a reopen must agree on. On the file
/// backend the partition count is baked into the on-disk routing (each
/// partition holds the keys its hash slot routed there), so reopening
/// with a different count — or with the memory backend, which would
/// ignore the checkpointed pages entirely — must fail closed instead of
/// silently losing data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EngineMeta {
    partitions: u32,
    file_backend: bool,
}

impl EngineMeta {
    fn of(config: &EngineConfig) -> Self {
        EngineMeta {
            partitions: config.scheme.partitions as u32,
            file_backend: config.scheme.backend.is_file(),
        }
    }

    fn write(&self, db_dir: &Path) -> Result<(), EngineError> {
        let mut buf = Vec::with_capacity(8 + 4 + 4 + 1);
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&META_VERSION.to_be_bytes());
        buf.extend_from_slice(&self.partitions.to_be_bytes());
        buf.push(self.file_backend as u8);
        let path = db_dir.join(META_FILE);
        use std::io::Write;
        let mut file = std::fs::File::create(&path)?;
        file.write_all(&buf)?;
        file.sync_all()?;
        drop(file);
        sync_dir(db_dir)
    }

    fn read(db_dir: &Path) -> Result<Option<Self>, EngineError> {
        let path = db_dir.join(META_FILE);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if buf.len() != 8 + 4 + 4 + 1 || &buf[0..8] != META_MAGIC {
            return Err(EngineError::Config(format!(
                "{} is not an sks-engine metadata file",
                path.display()
            )));
        }
        let version = u32::from_be_bytes(buf[8..12].try_into().expect("fixed width"));
        if version != META_VERSION {
            return Err(EngineError::Config(format!(
                "unknown engine metadata version {version}"
            )));
        }
        Ok(Some(EngineMeta {
            partitions: u32::from_be_bytes(buf[12..16].try_into().expect("fixed width")),
            file_backend: buf[16] != 0,
        }))
    }

    /// Refuses configurations that would silently orphan persisted data.
    fn check_compatible(&self, config: &EngineConfig) -> Result<(), EngineError> {
        if !self.file_backend {
            // Memory-backend databases carry their whole state in the WAL,
            // which replays through the router per key — any partition
            // count (and an upgrade to the file backend) is safe.
            return Ok(());
        }
        if !config.scheme.backend.is_file() {
            return Err(EngineError::Config(
                "this database was created on the file backend; reopening with the \
                 memory backend would ignore the checkpointed pages and silently drop \
                 data — configure StorageBackend::File"
                    .into(),
            ));
        }
        if self.partitions as usize != config.scheme.partitions {
            return Err(EngineError::Config(format!(
                "this database was created with {} partitions; the on-disk layout is \
                 fixed, but the config asks for {} — reopen with partitions({})",
                self.partitions, config.scheme.partitions, self.partitions
            )));
        }
        Ok(())
    }
}

/// Directory of partition `i`'s on-disk stores (file backend only).
fn partition_dir(db_dir: &Path, i: usize) -> PathBuf {
    db_dir.join(format!("part-{i:03}"))
}

/// Partition `i`'s snapshot file (memory backend): its record set as of
/// the last checkpoint that found it dirty, in WAL format.
fn snap_path(db_dir: &Path, i: usize) -> PathBuf {
    db_dir.join(format!("snap-{i:03}.sks"))
}

/// The partition index a `snap-NNN.sks` file name carries, if it is one.
fn snap_index(name: &str) -> Option<usize> {
    name.strip_prefix("snap-")?
        .strip_suffix(".sks")?
        .parse()
        .ok()
}

/// Every snapshot file in the directory, ordered by partition index.
fn snap_files(db_dir: &Path) -> Result<Vec<PathBuf>, EngineError> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(db_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(idx) = snap_index(name) {
            found.push((idx, entry.path()));
        }
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// The per-partition scheme config: on the file backend each partition's
/// stores are re-rooted under the database directory (whatever directory
/// the caller put in `StorageBackend::File.dir` is only used when the
/// config drives a standalone tree).
fn partition_config(scheme: &SchemeConfig, db_dir: &Path, i: usize) -> SchemeConfig {
    let mut config = scheme.clone();
    if let StorageBackend::File { pool_pages, .. } = &scheme.backend {
        config.backend = StorageBackend::File {
            dir: partition_dir(db_dir, i),
            pool_pages: *pool_pages,
        };
    }
    config
}

impl SksDb {
    /// Opens (or creates) the database in `dir`. If a WAL exists its
    /// intact records are replayed; a torn tail is detected, reported via
    /// [`SksDb::recovery_report`], and scrubbed.
    ///
    /// On the memory backend every tree is rebuilt from the full log
    /// ([`RecoveryPath::FullReplay`]). On the file backend persisted
    /// partitions are reopened from their checkpointed pages and only the
    /// log tail is replayed ([`RecoveryPath::TailReplay`]) — an O(tail)
    /// restart instead of an O(dataset) one.
    pub fn open<P: AsRef<Path>>(dir: P, config: EngineConfig) -> Result<Arc<Self>, EngineError> {
        if config.scheme.partitions == 0 {
            return Err(EngineError::Config("partitions must be >= 1".into()));
        }
        std::fs::create_dir_all(&dir)?;
        let db_dir = dir.as_ref();
        let wal_path = db_dir.join(WAL_FILE);

        // One engine per directory, enforced before anything is touched:
        // a second instance would checkpoint over this one's log and
        // stores by path. The flock dies with the process, so a crashed
        // engine never wedges its directory.
        let dir_lock = std::fs::File::create(db_dir.join(LOCK_FILE))?;
        if let Err(e) = dir_lock.try_lock() {
            return Err(EngineError::Config(format!(
                "database directory {} is already open in another engine \
                 instance (lock unavailable: {e}); two engines on one \
                 directory would corrupt it",
                db_dir.display()
            )));
        }

        let stored_meta = EngineMeta::read(db_dir)?;
        if let Some(meta) = &stored_meta {
            meta.check_compatible(&config)?;
        }

        let counters = OpCounters::with_observability(config.scheme.observability);
        let router = Router::new(&config.scheme, &counters)?;
        let n = config.scheme.partitions;
        // Reopen persisted partitions only when *all* of them are present.
        let persisted = config.scheme.backend.is_file()
            && (0..n).all(|i| EncipheredBTree::exists_on_disk(partition_dir(db_dir, i)));
        // A database the metadata says is file-backed but whose partition
        // stores are (partially) missing is damaged: creating fresh trees
        // would truncate the survivors and "recover" from a WAL that a
        // checkpoint may already have emptied. Fail instead of losing
        // data silently.
        if !persisted && stored_meta.map(|m| m.file_backend).unwrap_or(false) {
            return Err(EngineError::Config(
                "partition stores are missing or damaged (engine metadata says this \
                 database is file-backed); refusing to rebuild over them"
                    .into(),
            ));
        }
        // One process-wide record-cache clock across every partition: the
        // total decoded-record RAM of the engine is bounded by a single
        // budget instead of `record_cache × partitions`.
        let shared_record_cache = (config.scheme.global_record_cache > 0)
            .then(|| SharedRecordCache::new(config.scheme.global_record_cache));
        let mut partitions = Vec::with_capacity(n);
        for i in 0..n {
            let part_config = partition_config(&config.scheme, db_dir, i);
            // Every partition seals under an identical disguise, and the
            // router already built one: share the Arc so the open pays
            // one difference-set construction, not one per partition.
            let shared = router.disguise.clone();
            let mut tree = if persisted {
                EncipheredBTree::open_with_shared_disguise(part_config, counters.clone(), shared)?
            } else {
                EncipheredBTree::create_with_shared_disguise(part_config, counters.clone(), shared)?
            };
            if let Some(cache) = &shared_record_cache {
                tree.use_shared_record_cache(cache, i as u64);
            }
            partitions.push(tree);
        }

        // Per-partition snapshot files: with incremental checkpoints the
        // log holds only the tail since the last cut, and the snapshots
        // hold everything older.
        let snaps = snap_files(db_dir)?;
        if !snaps.is_empty() && !wal_path.exists() {
            return Err(EngineError::Config(
                "partition snapshots exist but wal.sks is missing; the snapshots \
                 alone cannot reconstruct a consistent state — refusing to open"
                    .into(),
            ));
        }
        let (mut wal, recovery) = if wal_path.exists() {
            counters
                .obs()
                .note(EventKind::RecoveryStart, NO_PARTITION, 0, 0, 0);
            let recovery_timer = counters.obs().start();
            let (wal, mut replay) = Wal::open_engine(
                &wal_path,
                config.wal_key(),
                config.sync,
                counters.clone(),
                config.wal_fault.as_ref(),
            )?;
            if !persisted && !snaps.is_empty() {
                // Snapshot records replay before the log: a snapshot is
                // one partition's state at its stream point, and every
                // mutation after that point is still in the log (a cut
                // never discards a record its checkpoint's snapshots do
                // not already cover), so re-applying the tail on top
                // converges — the same argument as tail replay over a
                // fuzzy page checkpoint.
                let mut combined = Vec::new();
                for snap in &snaps {
                    let (_snap_wal, mut snap_replay) =
                        Wal::open(snap, config.wal_key(), config.sync, counters.clone())?;
                    combined.append(&mut snap_replay.records);
                }
                combined.append(&mut replay.records);
                replay.records = combined;
            }
            let mut report = apply_replay(&mut partitions, &router, replay)?;
            report.path = if persisted {
                RecoveryPath::TailReplay
            } else {
                RecoveryPath::FullReplay
            };
            counters.obs().note(
                EventKind::RecoveryEnd,
                NO_PARTITION,
                report.records_replayed,
                report.bytes_discarded,
                recovery_timer.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
            // The recovery timeline (including any torn-tail scrub the
            // log open recorded) travels with the report.
            report.events = counters.obs().recent_events();
            if config.scheme.backend.is_file() && !persisted && !snaps.is_empty() {
                // Backend upgrade over a snapshot-backed database: the
                // tail-only log cannot re-create this state on its own,
                // so the rebuilt pages must be durable before a crash
                // could force the (persisted) tail-replay path.
                for tree in &mut partitions {
                    tree.flush()?;
                }
            }
            (wal, report)
        } else {
            let wal = Wal::create_engine(
                &wal_path,
                config.wal_block_size,
                config.wal_key(),
                config.sync,
                counters.clone(),
                config.wal_fault.as_ref(),
            )?;
            // The file's directory entry must be durable too, or a crash
            // could leave a database directory with no log at all.
            sync_dir(db_dir)?;
            (wal, RecoveryReport::default())
        };
        // The pipelined write path: group commits seal one batch frame per
        // commit, and a writer thread overlaps the next batch's sealing
        // with the previous batch's device write + fsync. Both preserve
        // the logical counters byte-identically and replay accepts both
        // framings, so the knob only moves physical work.
        if config.scheme.seal_batch {
            wal.set_seal_batch(true);
            wal.enable_pipeline();
            wal.set_overlap(config.overlap);
        }

        // Persist the layout facts (last, once stores + log exist) so the
        // next open can refuse incompatible configurations.
        let meta = EngineMeta::of(&config);
        if stored_meta != Some(meta) {
            meta.write(db_dir)?;
        }

        Ok(Arc::new_cyclic(|self_ref| SksDb {
            op_hist: (0..n).map(|_| OpHist::new()).collect(),
            range_hist: Histogram::new(),
            txn_hist: Histogram::new(),
            txns: TxnManager::new(),
            partitions: partitions.into_iter().map(RwLock::new).collect(),
            router,
            wal: Mutex::new(wal),
            counters,
            recovery,
            wal_path,
            config,
            checkpoint_serial: Mutex::new(()),
            partition_epochs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            snap_epochs: Mutex::new(vec![None; n]),
            last_compaction: Mutex::new(CompactionReport::default()),
            shared_record_cache,
            governance_tick: AtomicU64::new(0),
            self_ref: self_ref.clone(),
            auto_ckpt_running: AtomicBool::new(false),
            auto_ckpt_handle: Mutex::new(None),
            auto_ckpt_error: Mutex::new(None),
            _dir_lock: dir_lock,
        }))
    }

    /// A session handle for one logical client. Sessions are cheap clones
    /// of the shared engine and are `Send`, one per thread.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            db: Arc::clone(self),
        }
    }

    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Aggregated operation counters across WAL and every partition.
    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    /// The first-class stats surface: logical counters, per-op latency
    /// histograms (per partition and merged), the stage-attributed
    /// write-path breakdown and the space picture, at one instant.
    /// Histograms are empty below [`sks_storage::ObsLevel::Histograms`];
    /// the counters are byte-identical at every level.
    pub fn stats(&self) -> StatsSnapshot {
        let lens = self.partition_lens();
        let dirty = self.dirty_pages_per_partition();
        let mut merged: Vec<(&'static str, sks_storage::HistogramSnapshot)> = crate::stats::OPS
            .iter()
            .map(|&n| (n, Default::default()))
            .collect();
        let mut partitions = Vec::with_capacity(self.op_hist.len());
        for (i, hist) in self.op_hist.iter().enumerate() {
            let ops = vec![
                ("get", hist.get.snapshot()),
                ("put", hist.put.snapshot()),
                ("delete", hist.delete.snapshot()),
                ("batch", hist.batch.snapshot()),
            ];
            for (name, h) in &ops {
                if let Some((_, m)) = merged.iter_mut().find(|(n, _)| n == name) {
                    m.merge(h);
                }
            }
            partitions.push(PartitionStats {
                len: lens[i],
                dirty_pages: dirty[i],
                ops,
            });
        }
        if let Some((_, m)) = merged.iter_mut().find(|(n, _)| *n == "range") {
            m.merge(&self.range_hist.snapshot());
        }
        if let Some((_, m)) = merged.iter_mut().find(|(n, _)| *n == "txn") {
            m.merge(&self.txn_hist.snapshot());
        }
        StatsSnapshot {
            level: self.counters.obs().level(),
            counters: self.counters.snapshot(),
            ops: merged,
            partitions,
            stages: self.counters.obs().stages_snapshot(),
            wal_len_bytes: self.wal_len_bytes(),
            shared_record_cache_len: self.shared_record_cache_len(),
            last_compaction: self.last_compaction_report(),
        }
    }

    /// The flight recorder's current contents, oldest first (empty below
    /// [`sks_storage::ObsLevel::Counters`]; per-op events only at
    /// `FullTrace`). Events carry partitions, counts, byte lengths and
    /// durations — never key or value bytes.
    pub fn recent_events(&self) -> Vec<Event> {
        self.counters.obs().recent_events()
    }

    /// Rendered flight-recorder tail, one line per event (what a traced
    /// error attaches).
    fn flight_dump(&self) -> String {
        self.counters.obs().render_events().join("\n")
    }

    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    pub fn len(&self) -> u64 {
        self.partition_lens().iter().sum()
    }

    /// Per-partition key counts (router balance observability).
    pub fn partition_lens(&self) -> Vec<u64> {
        self.partitions
            .iter()
            .map(|p| p.read().expect("partition lock").len())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current logical size of the WAL in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.lock().expect("wal lock").len_bytes()
    }

    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        let timer = self.counters.obs().start();
        let p = self.router.partition_of(key)?;
        let result = {
            let tree = self.partitions[p].read().expect("partition lock");
            tree.get(key)?
        };
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.op_hist[p].get.record(ns);
            let len = result.as_ref().map_or(0, |v| v.len() as u64);
            self.counters
                .obs()
                .note(EventKind::Get, p as u32, len, 0, ns);
        }
        Ok(result)
    }

    /// Inserts (or replaces) the record under `key`.
    ///
    /// Failure semantics: an error from the WAL *commit* step (e.g. an
    /// fsync failure) leaves the operation's outcome indeterminate — the
    /// record may already sit durably in the log even though the error
    /// was returned. The WAL fail-stops on such errors (every later write
    /// returns [`EngineError::WalPoisoned`]); reopening the database
    /// replays the log and decides the final outcome, exactly as a crash
    /// at commit time would.
    ///
    /// This is an implicit *autocommit* transaction: the same
    /// log-then-apply commit sequence an explicit [`Txn`] runs, with one
    /// key and one partition, so its counters and WAL framing are
    /// byte-identical to the pre-transaction engine.
    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<Option<Vec<u8>>, EngineError> {
        let timer = self.counters.obs().start();
        let value_len = value.len() as u64;
        let p = self.router.partition_of(key)?;
        let (result, over_high_water) = {
            let mut tree = self.partitions[p].write().expect("partition lock");
            self.log_autocommit(|wal| wal.append_insert(key, &value).map(|_| ()))?;
            self.partition_epochs[p].fetch_add(1, Ordering::Release);
            let result = tree.insert(key, value)?;
            self.txns.note_commit_with(|| vec![(key, result.clone())]);
            (result, self.over_high_water(&tree))
        };
        self.after_mutation(over_high_water);
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.op_hist[p].put.record(ns);
            self.counters
                .obs()
                .note(EventKind::Put, p as u32, value_len, 0, ns);
        }
        Ok(result)
    }

    /// Inserts many records, amortising WAL commits: the batch is grouped
    /// by partition and each group pays *one* group-commit instead of one
    /// per record. Partition groups apply atomically with respect to each
    /// other's locks but the batch as a whole is not a transaction — the
    /// same read-committed contract as [`SksDb::range`]. Returns the
    /// number of records written.
    pub fn insert_batch(&self, items: Vec<(u64, Vec<u8>)>) -> Result<usize, EngineError> {
        let mut groups: Vec<Vec<(u64, Vec<u8>)>> =
            (0..self.partitions.len()).map(|_| Vec::new()).collect();
        for (key, value) in items {
            groups[self.router.partition_of(key)?].push((key, value));
        }
        let mut written = 0usize;
        for (p, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let timer = self.counters.obs().start();
            let count = group.len();
            let over_high_water = {
                let mut tree = self.partitions[p].write().expect("partition lock");
                self.log_autocommit(|wal| {
                    for (key, value) in &group {
                        wal.append_insert(*key, value)?;
                    }
                    Ok(())
                })?;
                self.partition_epochs[p].fetch_add(1, Ordering::Release);
                let mut priors = Vec::with_capacity(group.len());
                for (key, value) in group {
                    priors.push((key, tree.insert(key, value)?));
                }
                self.txns.note_commit(priors);
                self.over_high_water(&tree)
            };
            written += count;
            self.after_mutation(over_high_water);
            if let Some(t) = timer {
                let ns = t.elapsed().as_nanos() as u64;
                self.op_hist[p].batch.record(ns);
                self.counters
                    .obs()
                    .note(EventKind::Batch, p as u32, count as u64, 0, ns);
            }
        }
        Ok(written)
    }

    /// Sorted-ingest fast path: bulk-loads *strictly ascending* `(key,
    /// value)` pairs into an **empty** database. Each partition's group is
    /// logged under one group commit (one sealed batch frame, one fsync
    /// schedule tick) and its tree is then built bottom-up with exactly
    /// one encipherment pass per node block — no splits, no rebalancing,
    /// uniform fill — instead of one root-to-leaf descent per record.
    ///
    /// Fails closed without touching anything when the keys are not
    /// strictly ascending or any partition already holds keys. Like
    /// [`SksDb::insert_batch`] the load is not one transaction across
    /// partitions: a crash mid-load replays the partition groups already
    /// committed to the log and loses the rest. Returns the number of
    /// records written.
    pub fn bulk_load(&self, items: Vec<(u64, Vec<u8>)>) -> Result<usize, EngineError> {
        if let Some(w) = items.windows(2).find(|w| w[0].0 >= w[1].0) {
            return Err(EngineError::Config(format!(
                "bulk_load requires strictly ascending keys ({} then {})",
                w[0].0, w[1].0
            )));
        }
        for (p, tree) in self.partitions.iter().enumerate() {
            let len = tree.read().expect("partition lock").len();
            if len != 0 {
                return Err(EngineError::Config(format!(
                    "bulk_load requires an empty database (partition {p} holds {len} keys)"
                )));
            }
        }
        // Hash routing filters the ascending stream into per-partition
        // subsequences, so each group is itself strictly ascending.
        let mut groups: Vec<Vec<(u64, Vec<u8>)>> =
            (0..self.partitions.len()).map(|_| Vec::new()).collect();
        for (key, value) in items {
            groups[self.router.partition_of(key)?].push((key, value));
        }
        let mut written = 0usize;
        for (p, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let timer = self.counters.obs().start();
            let count = group.len();
            let over_high_water = {
                let mut tree = self.partitions[p].write().expect("partition lock");
                self.log_autocommit(|wal| {
                    for (key, value) in &group {
                        wal.append_insert(*key, value)?;
                    }
                    Ok(())
                })?;
                self.partition_epochs[p].fetch_add(1, Ordering::Release);
                tree.bulk_load(&group)?;
                // Loaded into an empty tree: every prior is `None`.
                self.txns
                    .note_commit_with(|| group.iter().map(|&(k, _)| (k, None)).collect());
                self.over_high_water(&tree)
            };
            written += count;
            self.after_mutation(over_high_water);
            if let Some(t) = timer {
                let ns = t.elapsed().as_nanos() as u64;
                self.op_hist[p].batch.record(ns);
                self.counters
                    .obs()
                    .note(EventKind::Batch, p as u32, count as u64, 0, ns);
            }
        }
        Ok(written)
    }

    /// Removes `key`. Same commit-failure semantics as [`SksDb::insert`].
    pub fn delete(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        let timer = self.counters.obs().start();
        let p = self.router.partition_of(key)?;
        let (result, over_high_water) = {
            let mut tree = self.partitions[p].write().expect("partition lock");
            self.log_autocommit(|wal| wal.append_delete(key).map(|_| ()))?;
            self.partition_epochs[p].fetch_add(1, Ordering::Release);
            let result = tree.delete(key)?;
            self.txns.note_commit_with(|| vec![(key, result.clone())]);
            (result, self.over_high_water(&tree))
        };
        self.after_mutation(over_high_water);
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.op_hist[p].delete.record(ns);
            self.counters
                .obs()
                .note(EventKind::Delete, p as u32, result.is_some() as u64, 0, ns);
        }
        Ok(result)
    }

    /// Completes an overlapped group commit: waits for the fsync ticket
    /// (when [`Wal::commit_pipelined`] handed one out) with the WAL lock
    /// already released, so another partition's writer can seal the next
    /// group while this group's fsync is in flight. The wait is this
    /// thread's durability barrier — charged to the same `WalFsync`
    /// stage an inline fsync would be. On error the tree has not been
    /// mutated (callers wait before applying), and the WAL's sticky
    /// writer error fail-stops every later commit.
    fn wait_durable(&self, ticket: Option<SyncTicket>) -> Result<(), EngineError> {
        let Some(ticket) = ticket else {
            return Ok(());
        };
        let timer = self.counters.obs().start();
        ticket.wait()?;
        self.counters.obs().stage(Stage::WalFsync, timer);
        Ok(())
    }

    /// The one autocommit logging sequence every single-group mutation
    /// takes: append(s) + policy-driven group commit under the WAL lock,
    /// then the durability wait with the lock released. Callers hold the
    /// partition write lock across this and the tree apply; explicit
    /// multi-key transactions run the same sequence via
    /// [`SksDb::commit_txn_with_hook`] with more partition locks and one
    /// atomic commit frame.
    fn log_autocommit(
        &self,
        append: impl FnOnce(&mut Wal<EngineWalDisk>) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        let ticket = {
            let mut wal = self.wal.lock().expect("wal lock");
            append(&mut wal)?;
            wal.commit_pipelined()?
        };
        self.wait_durable(ticket)
    }

    /// Begins an explicit multi-key transaction: snapshot reads as of
    /// now, writes buffered until [`Txn::commit`]. See [`Txn`].
    pub fn begin(self: &Arc<Self>) -> Txn {
        Txn::begin(Arc::clone(self))
    }

    /// The transaction manager (snapshot registry + undo overlay).
    pub(crate) fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// Undo-overlay entry count (tests: must drain to zero once the last
    /// snapshot releases, proving MVCC bookkeeping is change-proportional
    /// and transient).
    #[doc(hidden)]
    pub fn txn_overlay_len(&self) -> usize {
        self.txns.overlay_len()
    }

    /// Point read as of snapshot epoch `snapshot`: the current tree value
    /// rewound through the undo overlay. The partition read lock is
    /// released *before* the overlay probe — safe either way the race
    /// falls, because an overlay entry for a commit that applied after
    /// our tree read holds exactly the value we just read.
    pub(crate) fn snapshot_get(
        &self,
        key: u64,
        snapshot: u64,
    ) -> Result<Option<Vec<u8>>, EngineError> {
        let timer = self.counters.obs().start();
        let p = self.router.partition_of(key)?;
        let current = {
            let tree = self.partitions[p].read().expect("partition lock");
            tree.get(key)?
        };
        let result = self.txns.rewind(key, snapshot, current);
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.op_hist[p].get.record(ns);
            let len = result.as_ref().map_or(0, |v| v.len() as u64);
            self.counters
                .obs()
                .note(EventKind::Get, p as u32, len, 0, ns);
        }
        Ok(result)
    }

    /// Range scan `lo..=hi` as of snapshot epoch `snapshot`: the merged
    /// current-tree scan rewound through the undo overlay (post-snapshot
    /// overwrites revert, deletes resurrect, inserts vanish).
    pub(crate) fn snapshot_range(
        &self,
        lo: u64,
        hi: u64,
        snapshot: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        let timer = self.counters.obs().start();
        let mut out = Vec::new();
        for part in &self.partitions {
            let tree = part.read().expect("partition lock");
            out.extend(tree.range(lo, hi)?);
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        let out = self.txns.rewind_range(lo, hi, snapshot, out);
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.range_hist.record(ns);
            self.counters
                .obs()
                .note(EventKind::Range, NO_PARTITION, out.len() as u64, 0, ns);
        }
        Ok(out)
    }

    /// Commits an explicit transaction's buffered writes atomically.
    ///
    /// Sequence: take every written partition's write lock in ascending
    /// partition order (the engine's global lock order — cross-partition
    /// commit can never deadlock another commit, a batch group or
    /// `flush_pages`, which all walk ascending); validate
    /// first-committer-wins against `snapshot` *under* those locks; seal
    /// all writes as **one** WAL commit frame; wait out the durability
    /// barrier; apply to the trees; record undo priors — all before any
    /// lock is released, so no reader ever sees a half-applied commit.
    ///
    /// Framing and durability: a single-key transaction degenerates to
    /// the autocommit sequence exactly (legacy frame, policy-driven
    /// commit). A multi-key frame is all-or-nothing under torn-tail
    /// replay by construction; when it spans ≥ 2 partitions the commit
    /// additionally *forces* its fsync before the apply, so a checkpoint
    /// flushing one partition's pages can never outlive a lost log frame
    /// that also touched another partition.
    pub(crate) fn commit_txn_with_hook(
        &self,
        writes: BTreeMap<u64, (usize, Option<Vec<u8>>)>,
        snapshot: u64,
        mid: impl FnOnce(),
    ) -> Result<(), EngineError> {
        debug_assert!(!writes.is_empty());
        let timer = self.counters.obs().start();
        let keys = writes.len() as u64;
        // Group by the partition [`Txn::insert`] routed each key to;
        // BTreeMap keeps the lock order ascending.
        let mut by_part: BTreeMap<usize, KeyPriors> = BTreeMap::new();
        for (key, (p, value)) in writes {
            by_part.entry(p).or_default().push((key, value));
        }
        let parts = by_part.len();
        let mut guards: Vec<(usize, std::sync::RwLockWriteGuard<'_, EncipheredBTree>)> = by_part
            .keys()
            .map(|&p| (p, self.partitions[p].write().expect("partition lock")))
            .collect();
        // First-committer-wins: any written key committed by someone else
        // after our snapshot aborts us. Under the write locks, so no
        // competing commit can slip between validation and our frame.
        if let Some(key) = self
            .txns
            .conflict(by_part.values().flatten().map(|(k, _)| *k), snapshot)
        {
            let partition = by_part
                .iter()
                .find(|(_, g)| g.iter().any(|&(k, _)| k == key))
                .map(|(&p, _)| p)
                .unwrap_or(usize::MAX);
            self.counters.bump(|c| &c.txn_conflicts);
            self.counters
                .obs()
                .note(EventKind::TxnConflict, partition as u32, keys, 0, 0);
            return Err(EngineError::Conflict { key, partition });
        }
        mid();
        let ticket = {
            let mut wal = self.wal.lock().expect("wal lock");
            if keys == 1 {
                // Single-key commit: byte-identical autocommit framing.
                let (key, value) = &by_part.values().next().expect("one group")[0];
                match value {
                    Some(v) => wal.append_insert(*key, v)?,
                    None => wal.append_delete(*key)?,
                };
                wal.commit_pipelined()?
            } else {
                let ops: Vec<WalOp> = by_part
                    .values()
                    .flatten()
                    .map(|(k, v)| match v {
                        Some(value) => WalOp::Insert {
                            key: *k,
                            value: value.clone(),
                        },
                        None => WalOp::Delete { key: *k },
                    })
                    .collect();
                wal.append_txn(&ops)?;
                if parts > 1 {
                    wal.commit_durable()?
                } else {
                    wal.commit_pipelined()?
                }
            }
        };
        self.wait_durable(ticket)?;
        // Apply and collect undo priors, every lock still held.
        let mut priors = Vec::with_capacity(keys as usize);
        let mut over = false;
        for (p, tree) in guards.iter_mut() {
            let group = by_part.remove(p).expect("group for locked partition");
            self.partition_epochs[*p].fetch_add(1, Ordering::Release);
            for (key, value) in group {
                let old = match value {
                    Some(v) => tree.insert(key, v)?,
                    None => tree.delete(key)?,
                };
                priors.push((key, old));
            }
            over |= self.over_high_water(tree);
        }
        self.txns.note_commit(priors);
        drop(guards);
        self.after_mutation(over);
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.txn_hist.record(ns);
            self.counters.obs().stage_ns(Stage::TxnCommit, ns);
            self.counters
                .obs()
                .note(EventKind::TxnCommit, NO_PARTITION, keys, parts as u64, ns);
        }
        Ok(())
    }

    /// Whether this partition's buffered dirty set breached the configured
    /// high-water mark (0 = trigger disabled). Checked while the caller
    /// still holds the partition lock — the query is a cheap counter read.
    fn over_high_water(&self, tree: &EncipheredBTree) -> bool {
        let hw = self.config.scheme.dirty_high_water;
        hw > 0 && tree.dirty_pages() > hw
    }

    /// How many mutations pass between probes of the process-wide dirty
    /// budget. The probe sweeps every partition (a read lock + a pool
    /// counter each), so it is sampled rather than run per mutation; the
    /// budget is a soft bound and one sampling interval of drift is
    /// noise next to the budget itself.
    const GLOBAL_BUDGET_PROBE_EVERY: u64 = 16;

    /// Post-mutation memory governance, run with no partition lock held:
    /// a per-partition high-water breach kicks a full background
    /// checkpoint; otherwise a (sampled) breach of the *process-wide*
    /// dirty budget kicks a background flush of the dirtiest partition —
    /// the cheapest action that sheds the most pinned pages.
    fn after_mutation(&self, over_high_water: bool) {
        if over_high_water {
            self.kick_auto(AutoJob::Checkpoint);
            return;
        }
        if self.config.scheme.global_dirty_budget == 0 {
            return;
        }
        let tick = self.governance_tick.fetch_add(1, Ordering::Relaxed);
        if tick.is_multiple_of(Self::GLOBAL_BUDGET_PROBE_EVERY) && self.over_global_budget() {
            self.kick_auto(AutoJob::FlushDirtiest);
        }
    }

    /// Whether the sum of every partition's pinned dirty set exceeds the
    /// process-wide budget (0 = disabled). Takes the partition read locks
    /// one at a time, never while another is held.
    fn over_global_budget(&self) -> bool {
        let budget = self.config.scheme.global_dirty_budget;
        budget > 0 && self.global_dirty_pages() > budget
    }

    /// Total dirty pages pinned across all partitions.
    pub fn global_dirty_pages(&self) -> usize {
        self.dirty_pages_per_partition().iter().sum()
    }

    /// Flushes (journaled page checkpoint, no WAL cut) partitions in
    /// dirtiest-first order until the process-wide dirty set is back
    /// under the configured budget — proportional response instead of
    /// one flush per breach, so a single governance kick converges even
    /// when many partitions are dirty at once. With the budget disabled
    /// (0) a single dirtiest-partition flush runs, preserving the old
    /// contract for direct callers. Safe without touching the log: pages
    /// ahead of the WAL replay idempotently. Locks are taken one
    /// partition at a time, never nested, so foreground traffic only
    /// ever waits on the one partition currently being flushed.
    fn flush_dirtiest_partition(&self) -> Result<(), EngineError> {
        let budget = self.config.scheme.global_dirty_budget;
        let mut flushed = std::collections::HashSet::new();
        loop {
            let dirty = self.dirty_pages_per_partition();
            if budget > 0 && dirty.iter().sum::<usize>() <= budget {
                return Ok(());
            }
            // Dirtiest first, skipping partitions this sweep already
            // flushed: a foreground writer may re-dirty one mid-sweep,
            // and chasing it forever would starve the worker thread.
            let Some((i, &max)) = dirty
                .iter()
                .enumerate()
                .filter(|(i, _)| !flushed.contains(i))
                .max_by_key(|&(_, &d)| d)
            else {
                return Ok(());
            };
            if max == 0 {
                return Ok(());
            }
            {
                let mut guard = self.partitions[i].write().expect("partition lock");
                guard.flush()?;
            }
            flushed.insert(i);
            if budget == 0 {
                return Ok(());
            }
        }
    }

    /// Kicks one background governance job (no-op when one is already in
    /// flight). Called after the partition lock is released so the job
    /// never waits on its own trigger.
    fn kick_auto(&self, job: AutoJob) {
        // The handle-slot mutex is held across the running-flag swap,
        // the spawn and the parking, so two racing kicks cannot
        // interleave — without it, a kick could park its own finished
        // thread over a *running* one and then block joining it.
        let mut slot = self.auto_ckpt_handle.lock().expect("auto ckpt handle");
        if self.auto_ckpt_running.swap(true, Ordering::AcqRel) {
            return;
        }
        let Some(db) = self.self_ref.upgrade() else {
            self.auto_ckpt_running.store(false, Ordering::Release);
            return;
        };
        let handle = std::thread::spawn(move || {
            let timer = db.counters.obs().start();
            let result = match job {
                AutoJob::Checkpoint => db.checkpoint().map(|_| ()),
                AutoJob::FlushDirtiest => db.flush_dirtiest_partition(),
            };
            db.counters.obs().note(
                EventKind::AutoWork,
                NO_PARTITION,
                job as u64,
                result.is_err() as u64,
                timer.map_or(0, |t| t.elapsed().as_nanos() as u64),
            );
            if let Err(e) = result {
                *db.auto_ckpt_error.lock().expect("auto ckpt error slot") = Some(e.to_string());
            }
            db.auto_ckpt_running.store(false, Ordering::Release);
        });
        // Park the handle, reaping the previous worker — it stored
        // `running = false` before we won the swap, so its thread is at
        // (or within an instant of) exit and the join cannot stall.
        if let Some(prev) = slot.replace(handle) {
            let _ = prev.join();
        }
    }

    /// Blocks until any in-flight background checkpoint has finished.
    /// Call before dropping the last engine handle when the database
    /// directory must be immediately reopenable: a background checkpoint
    /// holds its own reference to the engine, so until it completes the
    /// directory lock stays held (a racing reopen fails closed with
    /// "already open" rather than corrupting anything) and any error it
    /// hits is only observable via
    /// [`SksDb::take_auto_checkpoint_error`].
    pub fn wait_for_auto_checkpoint(&self) {
        loop {
            let handle = self
                .auto_ckpt_handle
                .lock()
                .expect("auto ckpt handle")
                .take();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => {
                    if !self.auto_ckpt_running.load(Ordering::Acquire) {
                        return;
                    }
                    // A kick raced us between swap(true) and parking its
                    // handle; yield and re-check.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// The first error a background checkpoint hit, if any (sticky until
    /// read).
    pub fn take_auto_checkpoint_error(&self) -> Option<String> {
        self.auto_ckpt_error
            .lock()
            .expect("auto ckpt error slot")
            .take()
    }

    /// Which partition `key` routes to (observability; the assignment
    /// pattern carries no key order — it hashes the disguised key).
    pub fn partition_of(&self, key: u64) -> Result<usize, EngineError> {
        self.router.partition_of(key)
    }

    /// Total decoded records held by the process-wide record cache
    /// (None when `global_record_cache` is 0 and each partition budgets
    /// its own).
    pub fn shared_record_cache_len(&self) -> Option<usize> {
        self.shared_record_cache
            .as_ref()
            .map(SharedRecordCache::len)
    }

    /// Dirty pages currently buffered per partition (file backend; all
    /// zeros on the memory backend).
    pub fn dirty_pages_per_partition(&self) -> Vec<usize> {
        self.partitions
            .iter()
            .map(|p| p.read().expect("partition lock").dirty_pages())
            .collect()
    }

    /// Range scan `lo..=hi` across all partitions, merged in key order.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        let timer = self.counters.obs().start();
        let mut out = Vec::new();
        for part in &self.partitions {
            let tree = part.read().expect("partition lock");
            out.extend(tree.range(lo, hi)?);
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        if let Some(t) = timer {
            let ns = t.elapsed().as_nanos() as u64;
            self.range_hist.record(ns);
            self.counters
                .obs()
                .note(EventKind::Range, NO_PARTITION, out.len() as u64, 0, ns);
        }
        Ok(out)
    }

    /// Forces every pending WAL byte to stable storage.
    pub fn flush(&self) -> Result<(), EngineError> {
        self.wal.lock().expect("wal lock").flush()
    }

    /// Structural validation of every partition.
    pub fn validate(&self) -> Result<(), EngineError> {
        for part in &self.partitions {
            part.read().expect("partition lock").validate()?;
        }
        Ok(())
    }

    /// Fuzzy checkpoint: truncates the replay work a reopen must do, then
    /// resumes logging in a fresh WAL — *without* stalling the engine.
    /// Clients keep reading and writing throughout; a writer blocks only
    /// while its own partition is being flushed/snapshotted, and readers
    /// only on a file-backend partition mid-flush.
    ///
    /// Three phases:
    ///
    /// 1. **Mark** the dirty epoch: note the WAL sequence number; every
    ///    record from it onward will survive the cut.
    /// 2. **Flush/snapshot partitions** — file backend: each partition's
    ///    dirty pages go through the journaled page-store checkpoint, all
    ///    partitions *in parallel* (one thread each, write-locking only
    ///    that partition); memory backend: each partition is streamed as
    ///    insert records into the fresh log under its *read* lock, one
    ///    partition at a time.
    /// 3. **Cut the WAL** — only after every partition committed: the
    ///    records appended since the mark (the fuzzy tail) are carried
    ///    into the fresh log, which atomically renames over the old one.
    ///
    /// Convergence: an operation between the mark and its partition's
    /// flush is captured twice (flushed image *and* retained tail) and
    /// replays idempotently — record pointers are never reused and logged
    /// operations are last-writer-wins per key, applied in log order. An
    /// operation after its partition's flush lives in the retained tail
    /// only. An operation before the mark is in every flushed image (the
    /// tree update happens under the same partition write lock as its WAL
    /// append, and the flush queues behind that lock).
    ///
    /// Crash safety: the old WAL stands until the rename + directory
    /// fsync; a crash anywhere earlier recovers from the old log over the
    /// (possibly partially newer) images, which converges as above.
    ///
    /// Returns the number of snapshot records written (memory backend;
    /// the file backend's durability lives in the pages, so 0). Whole
    /// checkpoints are serialised against each other.
    pub fn checkpoint(&self) -> Result<u64, EngineError> {
        self.checkpoint_with_hook(|| {})
    }

    /// [`SksDb::checkpoint`] with a test hook invoked mid-checkpoint —
    /// after the epoch mark, while partition flushing is in flight (file
    /// backend) or between partition snapshots (memory backend), with no
    /// partition lock held by the calling thread. Concurrency tests use
    /// it to *require* reader/writer progress before the checkpoint may
    /// complete.
    #[doc(hidden)]
    pub fn checkpoint_with_hook(&self, mid: impl FnOnce()) -> Result<u64, EngineError> {
        let obs = self.counters.obs();
        obs.note(EventKind::CheckpointBegin, NO_PARTITION, 0, 0, 0);
        let begin = obs.start();
        match self.checkpoint_inner(mid) {
            Ok(written) => {
                let ns = begin.map_or(0, |t| t.elapsed().as_nanos() as u64);
                obs.note(EventKind::CheckpointEnd, NO_PARTITION, written, 0, ns);
                Ok(written)
            }
            Err(e) => {
                let ns = begin.map_or(0, |t| t.elapsed().as_nanos() as u64);
                obs.note(EventKind::CheckpointEnd, NO_PARTITION, 0, 1, ns);
                // A failed maintenance pass carries its flight-recorder
                // dump: the event tail that led up to the error.
                Err(e.with_trace(self.flight_dump()))
            }
        }
    }

    fn checkpoint_inner(&self, mid: impl FnOnce()) -> Result<u64, EngineError> {
        let _serial = self.checkpoint_serial.lock().expect("checkpoint serial");

        // Phase 1: mark the fuzzy epoch — the sequence number and byte
        // offset where the retained tail will begin, so the cut scans
        // O(tail) instead of re-reading the whole log.
        let (mark_seq, mark_offset) = {
            let wal = self.wal.lock().expect("wal lock");
            (wal.next_seq(), wal.len_bytes())
        };

        let tmp_path = self.wal_path.with_extension("tmp");
        // Detached counters while the snapshot is written: the internal
        // rewrite is not client traffic and must not inflate
        // wal_appends/wal_bytes. Created on its own thread so the fresh
        // log's durability work (header write + fsync + directory sync)
        // overlaps the partition flush phase below — the cut is the only
        // consumer and joins right before it needs the handle. An early
        // error return simply detaches the thread; the stray `.tmp` is
        // overwritten by the next checkpoint.
        let fresh_handle = std::thread::spawn({
            let tmp = tmp_path.clone();
            let block_size = self.config.wal_block_size;
            let key = self.config.wal_key();
            let sync = self.config.sync;
            let fault = self.config.wal_fault.clone();
            move || {
                Wal::create_engine(
                    &tmp,
                    block_size,
                    key,
                    sync,
                    OpCounters::new(),
                    fault.as_ref(),
                )
            }
        });
        let mut written = 0u64;

        // Phase 2. Each partition first runs its bounded record-store
        // compaction pass and then the node-device sliding pass, both
        // under the write lock (crash-safe because on the file backend
        // nothing reaches the medium until the journaled page-store
        // checkpoint below commits, and on the memory backend state is
        // reconstructed from the WAL anyway). The truncated devices
        // physically shrink at the flush.
        let flush_timer = self.counters.obs().start();
        let compaction_budget = self.config.scheme.compaction;
        let compaction_floor = self.config.scheme.compaction_floor;
        let mut compacted = CompactionReport::default();
        if self.config.scheme.backend.is_file() {
            // Durability lives in the tree pages: journal every
            // partition's dirty set, partitions in parallel.
            let mut results: Vec<Result<CompactionReport, EngineError>> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .partitions
                    .iter()
                    .map(|p| {
                        s.spawn(move || -> Result<CompactionReport, EngineError> {
                            let mut guard = p.write().expect("partition lock");
                            // Floored: checkpoint maintenance only
                            // rewrites blocks churn has made worth
                            // reclaiming (SksDb::compact still drains).
                            let mut report =
                                guard.compact_step_floored(compaction_budget, compaction_floor)?;
                            report.absorb(guard.compact_nodes(compaction_budget)?);
                            guard.flush()?;
                            Ok(report)
                        })
                    })
                    .collect();
                mid();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition flush thread"))
                    .collect()
            });
            for r in results.drain(..) {
                compacted.absorb(r?);
            }
        } else {
            // Memory backend: durability lives in per-partition snapshot
            // files plus the log tail. Only partitions whose mutation
            // epoch moved since their last snapshot re-stream — the
            // checkpoint costs O(changed partitions), not O(dataset).
            // Each dirty partition compacts under its write lock, then
            // streams its snapshot under its *read* lock — readers run
            // freely, writers stall only on the partition being worked
            // on. Clean partitions are not even locked for writing.
            let max_key = self.config.scheme.capacity;
            let db_dir = self
                .wal_path
                .parent()
                .expect("wal lives in the db dir")
                .to_path_buf();
            let mut mid = Some(mid);
            let mut snapped = 0u64;
            for (i, part) in self.partitions.iter().enumerate() {
                {
                    let mut guard = part.write().expect("partition lock");
                    let epoch = self.partition_epochs[i].load(Ordering::Acquire);
                    let clean = self.config.incremental_checkpoints
                        && self.snap_epochs.lock().expect("snap epochs")[i] == Some(epoch);
                    if clean {
                        // Logically untouched since its snapshot: nothing
                        // to compact (churn is what creates dead blocks)
                        // and nothing to re-stream.
                        drop(guard);
                        if let Some(mid) = mid.take() {
                            mid();
                        }
                        continue;
                    }
                    compacted
                        .absorb(guard.compact_step_floored(compaction_budget, compaction_floor)?);
                    compacted.absorb(guard.compact_nodes(compaction_budget)?);
                    // Applies the pass's quarantined frees (a memory
                    // device has no cross-device crash window to wait
                    // out — durability lives in the WAL).
                    guard.flush()?;
                }
                let guard = part.read().expect("partition lock");
                // The epoch this snapshot captures: re-read under the
                // read lock, where no mutation can be in flight.
                let epoch = self.partition_epochs[i].load(Ordering::Acquire);
                let tmp = snap_path(&db_dir, i).with_extension("sks.tmp");
                // Detached counters: the snapshot rewrite is maintenance,
                // not client traffic.
                let mut snap = Wal::create(
                    &tmp,
                    self.config.wal_block_size,
                    self.config.wal_key(),
                    SyncPolicy::Never,
                    OpCounters::new(),
                )?;
                // Stream without materialising: memory stays O(height +
                // one record) regardless of partition size. Keys live in
                // `0..=capacity` by construction (SchemeConfig's domain).
                for item in guard.iter_range(0, max_key) {
                    let (key, value) = item?;
                    snap.append_insert(key, &value)?;
                    written += 1;
                }
                snap.flush()?;
                drop(snap);
                drop(guard);
                std::fs::rename(&tmp, snap_path(&db_dir, i))?;
                snapped += 1;
                self.snap_epochs.lock().expect("snap epochs")[i] = Some(epoch);
                if let Some(mid) = mid.take() {
                    mid();
                }
            }
            if let Some(mid) = mid.take() {
                mid(); // all-partitions-clean case must still run it
            }
            if snapped > 0 {
                // The snapshots' directory entries must be durable before
                // the cut discards the log records they supersede.
                sync_dir(&db_dir)?;
            }
            self.counters.obs().note(
                EventKind::CheckpointPhase,
                NO_PARTITION,
                1, // snapshot phase: partitions re-streamed
                snapped,
                0,
            );
            // Snapshots from a larger partition count of a previous
            // incarnation are superseded the moment every current
            // partition has a fresh snapshot (all-`None` epochs at open
            // force exactly that on the first checkpoint); remove them
            // *before* the cut — after it they would replay stale values
            // over the current snapshots.
            self.remove_snaps(false)?;
        }
        *self.last_compaction.lock().expect("compaction report") = compacted;
        self.counters
            .obs()
            .stage(Stage::CheckpointFlush, flush_timer);
        self.counters.obs().note(
            EventKind::CheckpointPhase,
            NO_PARTITION,
            2, // flush/snapshot phase
            written,
            0,
        );

        // Phase 3: cut the log, carrying the fuzzy tail. Writers are
        // blocked only for this re-append + rename.
        let cut_timer = self.counters.obs().start();
        let mut fresh = fresh_handle.join().expect("wal create thread")?;
        let mut wal = self.wal.lock().expect("wal lock");
        // Transaction groups must survive the cut as single frames — the
        // frame boundary *is* the atomicity guarantee a reopen relies on.
        // Batch groups were only a physical optimisation and re-append as
        // plain records.
        for group in wal.records_since(mark_seq, mark_offset)? {
            if group.txn {
                let ops: Vec<WalOp> = group.records.into_iter().map(|r| r.op).collect();
                fresh.append_txn(&ops)?;
            } else {
                for rec in group.records {
                    match rec.op {
                        WalOp::Insert { key, value } => {
                            fresh.append_insert(key, &value)?;
                        }
                        WalOp::Delete { key } => {
                            fresh.append_delete(key)?;
                        }
                    }
                }
            }
        }
        fresh.flush()?;
        std::fs::rename(&tmp_path, &self.wal_path)?;
        // fsync the directory: without it the rename itself is not
        // durable, and a power failure could revert to the old log even
        // though later commits fsynced the new inode's data.
        sync_dir(self.wal_path.parent().expect("wal lives in the db dir"))?;
        // The fresh Wal's file handle survives the rename (same inode);
        // from here on it carries client traffic, so it re-adopts the
        // engine's shared counters — and the pipelined write path. Batch
        // sealing is enabled only now, at a commit boundary: during the
        // snapshot rewrite it would have staged the entire snapshot as
        // one unbounded batch.
        fresh.adopt_counters(self.counters.clone());
        if self.config.scheme.seal_batch {
            fresh.set_seal_batch(true);
            fresh.enable_pipeline();
            fresh.set_overlap(self.config.overlap);
        }
        *wal = fresh;
        self.counters.obs().stage(Stage::CheckpointCut, cut_timer);
        drop(wal);
        if self.config.scheme.backend.is_file() {
            // Durability lives in the pages now; a lingering snapshot
            // (from a memory-backend incarnation) would replay stale —
            // even resurrected — values into a later full replay.
            self.remove_snaps(true)?;
        }
        Ok(written)
    }

    /// Removes snapshot files the current checkpoint has made stale:
    /// every snapshot when `all`, otherwise snapshots for partition
    /// indices the current configuration no longer has — plus, either
    /// way, `.tmp` strays an interrupted snapshot stream left behind.
    fn remove_snaps(&self, all: bool) -> Result<(), EngineError> {
        let db_dir = self.wal_path.parent().expect("wal lives in the db dir");
        let n = self.partitions.len();
        let mut removed = false;
        for entry in std::fs::read_dir(db_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match snap_index(name) {
                Some(idx) => all || idx >= n,
                None => name.starts_with("snap-") && name.ends_with(".tmp"),
            };
            if stale {
                std::fs::remove_file(entry.path())?;
                removed = true;
            }
        }
        if removed {
            sync_dir(db_dir)?;
        }
        Ok(())
    }

    /// One manual space-governance pass over every partition: up to
    /// `max_blocks_per_partition` tombstoned data blocks rewritten
    /// (deadest first) plus a node-device sliding pass of the same
    /// budget, under the partition write locks, one partition at a time.
    /// The reclaimed blocks are quarantined until the next checkpoint's
    /// flush protocol commits them (see `EncipheredBTree::flush`);
    /// calling [`SksDb::checkpoint`] runs this automatically with the
    /// configured [`SchemeConfig::compaction`] budget.
    pub fn compact(
        &self,
        max_blocks_per_partition: usize,
    ) -> Result<CompactionReport, EngineError> {
        let timer = self.counters.obs().start();
        let mut total = CompactionReport::default();
        for part in &self.partitions {
            let mut guard = part.write().expect("partition lock");
            let pass = guard
                .compact_step(max_blocks_per_partition)
                .and_then(|mut r| {
                    r.absorb(guard.compact_nodes(max_blocks_per_partition)?);
                    Ok(r)
                });
            match pass {
                Ok(report) => total.absorb(report),
                // A failed maintenance pass carries its flight-recorder
                // dump, like a failed checkpoint.
                Err(e) => return Err(EngineError::from(e).with_trace(self.flight_dump())),
            }
        }
        self.counters.obs().note(
            EventKind::Compaction,
            NO_PARTITION,
            total.moved_records + total.moved_nodes,
            total.freed_blocks,
            timer.map_or(0, |t| t.elapsed().as_nanos() as u64),
        );
        Ok(total)
    }

    /// What the most recent checkpoint's compaction passes reclaimed.
    pub fn last_compaction_report(&self) -> CompactionReport {
        *self.last_compaction.lock().expect("compaction report")
    }

    /// Per-partition data-store footprint as `(total blocks, free
    /// blocks)` — compaction keeps `total - free` bounded by the live
    /// dataset.
    pub fn data_block_usage_per_partition(&self) -> Vec<(u32, u32)> {
        self.partitions
            .iter()
            .map(|p| p.read().expect("partition lock").data_block_usage())
            .collect()
    }

    /// Flushes every partition's pages and the WAL to stable storage
    /// without truncating the log — a graceful-shutdown helper for the
    /// file backend (the next open still tail-replays, but the page
    /// stores are current).
    pub fn flush_pages(&self) -> Result<(), EngineError> {
        let mut guards: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.write().expect("partition lock"))
            .collect();
        for guard in &mut guards {
            guard.flush()?;
        }
        self.wal.lock().expect("wal lock").flush()
    }
}

/// Makes directory-entry mutations (create, rename) durable.
fn sync_dir(dir: &Path) -> Result<(), EngineError> {
    Ok(sks_storage::sync_dir(dir)?)
}

impl Drop for SksDb {
    fn drop(&mut self) {
        // Reap the parked background-checkpoint worker. When the worker
        // itself holds the final engine reference, this drop runs *on*
        // that thread — joining yourself deadlocks, so skip (the thread
        // is at exit anyway).
        // Tolerate a poisoned slot: panicking inside drop-during-panic
        // would abort.
        let handle = match self.auto_ckpt_handle.get_mut() {
            Ok(slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(h) = handle {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

impl std::fmt::Debug for SksDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SksDb")
            .field("partitions", &self.partitions.len())
            .field("scheme", &self.config.scheme.scheme)
            .field("wal_path", &self.wal_path)
            .finish()
    }
}

/// Per-client handle: a cheap, `Send` clone of the shared engine. The
/// unmodified-DBMS fiction of the paper maps here: a session speaks plain
/// `get/insert/delete/range` over plaintext keys and never sees disguises,
/// seals, partitions or the log.
///
/// Every session mutation is a transaction. The plain methods below are
/// *autocommit* wrappers: each one runs the engine's single commit
/// sequence (log → durability barrier → tree apply, under the partition
/// lock) for one implicit single-group transaction, with counters and
/// WAL framing byte-identical to the pre-transaction API. For multi-key
/// atomicity, [`Session::begin`] hands out an explicit [`Txn`] whose
/// buffered writes commit through the very same sequence — once, as one
/// atomic WAL frame, across every written partition.
#[derive(Clone, Debug)]
pub struct Session {
    db: Arc<SksDb>,
}

impl Session {
    /// Begins an explicit multi-key transaction: snapshot reads as of
    /// now (never blocking writers), buffered writes, atomic
    /// cross-partition commit. Dropping it uncommitted aborts.
    pub fn begin(&self) -> Txn {
        self.db.begin()
    }

    /// Read-committed point read (autocommit; use [`Txn::get`] for
    /// snapshot reads).
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.get(key)
    }

    /// Autocommit single-key insert: an implicit one-write transaction.
    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.insert(key, value)
    }

    /// Autocommit batch: one implicit transaction *per partition group*
    /// (amortised commits, not cross-partition atomicity — use
    /// [`Session::begin`] for that).
    pub fn insert_batch(&self, items: Vec<(u64, Vec<u8>)>) -> Result<usize, EngineError> {
        self.db.insert_batch(items)
    }

    /// Autocommit sorted-ingest fast path (one implicit transaction per
    /// partition group, like [`Session::insert_batch`]).
    pub fn bulk_load(&self, items: Vec<(u64, Vec<u8>)>) -> Result<usize, EngineError> {
        self.db.bulk_load(items)
    }

    /// Autocommit single-key delete: an implicit one-write transaction.
    pub fn delete(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.delete(key)
    }

    /// Read-committed range scan (per-partition-consistent; use
    /// [`Txn::range`] for a snapshot-consistent scan).
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        self.db.range(lo, hi)
    }

    pub fn db(&self) -> &Arc<SksDb> {
        &self.db
    }
}

// Sessions are handed to worker threads; the engine is shared behind Arc.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SksDb>();
    assert_send_sync::<Session>();
};
