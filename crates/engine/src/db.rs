//! [`SksDb`] — the concurrent, WAL-backed engine over enciphered B-trees.
//!
//! Architecture (one paragraph): the key space is sharded across `N`
//! independent [`EncipheredBTree`] partitions, each behind its own
//! `RwLock`, so point reads run concurrently everywhere and writers
//! serialize only within a partition. The router hashes the *disguised*
//! key — the same `f(k)` the paper writes to disk — so even the
//! partition-assignment pattern an opponent could observe carries no key
//! order. Every mutation is appended to a shared write-ahead log (one
//! `Mutex`, group commit per [`SyncPolicy`]) *before* it touches the tree,
//! and recovery replays the log through the identical router path.
//!
//! Lock order is always `partition.write → wal.lock`, and reads take no
//! WAL lock at all. Range scans visit partitions one at a time and merge,
//! so they see a per-partition-consistent (not globally snapshot) view —
//! the classic read-committed engine contract.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use sks_core::{EncipheredBTree, KeyDisguise, SchemeConfig, StorageBackend};
use sks_storage::{OpCounters, OpSnapshot, SyncPolicy};

use crate::error::EngineError;
use crate::recovery::{apply_replay, RecoveryPath, RecoveryReport};
use crate::wal::Wal;

/// Engine-level configuration wrapping the paper-level [`SchemeConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scheme, capacity and `partitions` knob for every tree partition.
    pub scheme: SchemeConfig,
    /// Commit durability (see [`SyncPolicy`]); default is group commit.
    pub sync: SyncPolicy,
    /// Block size of the WAL's backing [`sks_storage::FileDisk`].
    pub wal_block_size: usize,
}

impl EngineConfig {
    pub fn new(scheme: SchemeConfig) -> Self {
        EngineConfig {
            scheme,
            sync: SyncPolicy::default(),
            wal_block_size: 4096,
        }
    }

    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Key sealing the WAL's record bodies: derived from the scheme's
    /// independent data-block key (§5) with a domain-separation tweak, so
    /// log and data blocks never share keystream.
    fn wal_key(&self) -> u128 {
        self.scheme.data_key
            ^ 0x57414C_u128.rotate_left(96)
            ^ ((self.scheme.tree_key as u128) << 32)
    }
}

/// Routes keys to partitions by hashing the disguised key.
pub(crate) struct Router {
    disguise: Option<Arc<dyn KeyDisguise>>,
    n: usize,
}

impl Router {
    fn new(config: &SchemeConfig, counters: &OpCounters) -> Result<Self, EngineError> {
        Ok(Router {
            disguise: config.build_disguise(counters)?,
            n: config.partitions,
        })
    }

    /// splitmix64 finalizer — decorrelates partition choice from the
    /// disguised value's residue structure.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    pub(crate) fn partition_of(&self, key: u64) -> Result<usize, EngineError> {
        // Disguise even when unsharded: this doubles as the domain check
        // that keeps doomed (out-of-domain) operations out of the WAL.
        let routed = match &self.disguise {
            Some(d) => d.disguise(key).map_err(|e| {
                EngineError::Core(sks_core::CoreError::Config(format!(
                    "key {key} outside configured domain: {e}"
                )))
            })?,
            None => key,
        };
        if self.n == 1 {
            return Ok(0);
        }
        Ok((Self::mix(routed) % self.n as u64) as usize)
    }
}

/// The engine. Cheap to share (`Arc`); one instance per database
/// directory.
pub struct SksDb {
    partitions: Vec<RwLock<EncipheredBTree>>,
    router: Router,
    wal: Mutex<Wal>,
    counters: OpCounters,
    recovery: RecoveryReport,
    wal_path: PathBuf,
    config: EngineConfig,
}

const WAL_FILE: &str = "wal.sks";
const META_FILE: &str = "engine.sks";
const META_MAGIC: &[u8; 8] = b"SKSENGN1";
const META_VERSION: u32 = 1;

/// Persisted engine layout: the facts a reopen must agree on. On the file
/// backend the partition count is baked into the on-disk routing (each
/// partition holds the keys its hash slot routed there), so reopening
/// with a different count — or with the memory backend, which would
/// ignore the checkpointed pages entirely — must fail closed instead of
/// silently losing data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EngineMeta {
    partitions: u32,
    file_backend: bool,
}

impl EngineMeta {
    fn of(config: &EngineConfig) -> Self {
        EngineMeta {
            partitions: config.scheme.partitions as u32,
            file_backend: config.scheme.backend.is_file(),
        }
    }

    fn write(&self, db_dir: &Path) -> Result<(), EngineError> {
        let mut buf = Vec::with_capacity(8 + 4 + 4 + 1);
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&META_VERSION.to_be_bytes());
        buf.extend_from_slice(&self.partitions.to_be_bytes());
        buf.push(self.file_backend as u8);
        let path = db_dir.join(META_FILE);
        use std::io::Write;
        let mut file = std::fs::File::create(&path)?;
        file.write_all(&buf)?;
        file.sync_all()?;
        drop(file);
        sync_dir(db_dir)
    }

    fn read(db_dir: &Path) -> Result<Option<Self>, EngineError> {
        let path = db_dir.join(META_FILE);
        let buf = match std::fs::read(&path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        if buf.len() != 8 + 4 + 4 + 1 || &buf[0..8] != META_MAGIC {
            return Err(EngineError::Config(format!(
                "{} is not an sks-engine metadata file",
                path.display()
            )));
        }
        let version = u32::from_be_bytes(buf[8..12].try_into().expect("fixed width"));
        if version != META_VERSION {
            return Err(EngineError::Config(format!(
                "unknown engine metadata version {version}"
            )));
        }
        Ok(Some(EngineMeta {
            partitions: u32::from_be_bytes(buf[12..16].try_into().expect("fixed width")),
            file_backend: buf[16] != 0,
        }))
    }

    /// Refuses configurations that would silently orphan persisted data.
    fn check_compatible(&self, config: &EngineConfig) -> Result<(), EngineError> {
        if !self.file_backend {
            // Memory-backend databases carry their whole state in the WAL,
            // which replays through the router per key — any partition
            // count (and an upgrade to the file backend) is safe.
            return Ok(());
        }
        if !config.scheme.backend.is_file() {
            return Err(EngineError::Config(
                "this database was created on the file backend; reopening with the \
                 memory backend would ignore the checkpointed pages and silently drop \
                 data — configure StorageBackend::File"
                    .into(),
            ));
        }
        if self.partitions as usize != config.scheme.partitions {
            return Err(EngineError::Config(format!(
                "this database was created with {} partitions; the on-disk layout is \
                 fixed, but the config asks for {} — reopen with partitions({})",
                self.partitions, config.scheme.partitions, self.partitions
            )));
        }
        Ok(())
    }
}

/// Directory of partition `i`'s on-disk stores (file backend only).
fn partition_dir(db_dir: &Path, i: usize) -> PathBuf {
    db_dir.join(format!("part-{i:03}"))
}

/// The per-partition scheme config: on the file backend each partition's
/// stores are re-rooted under the database directory (whatever directory
/// the caller put in `StorageBackend::File.dir` is only used when the
/// config drives a standalone tree).
fn partition_config(scheme: &SchemeConfig, db_dir: &Path, i: usize) -> SchemeConfig {
    let mut config = scheme.clone();
    if let StorageBackend::File { pool_pages, .. } = &scheme.backend {
        config.backend = StorageBackend::File {
            dir: partition_dir(db_dir, i),
            pool_pages: *pool_pages,
        };
    }
    config
}

impl SksDb {
    /// Opens (or creates) the database in `dir`. If a WAL exists its
    /// intact records are replayed; a torn tail is detected, reported via
    /// [`SksDb::recovery_report`], and scrubbed.
    ///
    /// On the memory backend every tree is rebuilt from the full log
    /// ([`RecoveryPath::FullReplay`]). On the file backend persisted
    /// partitions are reopened from their checkpointed pages and only the
    /// log tail is replayed ([`RecoveryPath::TailReplay`]) — an O(tail)
    /// restart instead of an O(dataset) one.
    pub fn open<P: AsRef<Path>>(dir: P, config: EngineConfig) -> Result<Arc<Self>, EngineError> {
        if config.scheme.partitions == 0 {
            return Err(EngineError::Config("partitions must be >= 1".into()));
        }
        std::fs::create_dir_all(&dir)?;
        let db_dir = dir.as_ref();
        let wal_path = db_dir.join(WAL_FILE);

        let stored_meta = EngineMeta::read(db_dir)?;
        if let Some(meta) = &stored_meta {
            meta.check_compatible(&config)?;
        }

        let counters = OpCounters::new();
        let router = Router::new(&config.scheme, &counters)?;
        let n = config.scheme.partitions;
        // Reopen persisted partitions only when *all* of them are present.
        let persisted = config.scheme.backend.is_file()
            && (0..n).all(|i| EncipheredBTree::exists_on_disk(partition_dir(db_dir, i)));
        // A database the metadata says is file-backed but whose partition
        // stores are (partially) missing is damaged: creating fresh trees
        // would truncate the survivors and "recover" from a WAL that a
        // checkpoint may already have emptied. Fail instead of losing
        // data silently.
        if !persisted && stored_meta.map(|m| m.file_backend).unwrap_or(false) {
            return Err(EngineError::Config(
                "partition stores are missing or damaged (engine metadata says this \
                 database is file-backed); refusing to rebuild over them"
                    .into(),
            ));
        }
        let mut partitions = Vec::with_capacity(n);
        for i in 0..n {
            let part_config = partition_config(&config.scheme, db_dir, i);
            partitions.push(if persisted {
                EncipheredBTree::open_with_counters(part_config, counters.clone())?
            } else {
                EncipheredBTree::create_with_counters(part_config, counters.clone())?
            });
        }

        let (wal, recovery) = if wal_path.exists() {
            let (wal, replay) =
                Wal::open(&wal_path, config.wal_key(), config.sync, counters.clone())?;
            let mut report = apply_replay(&mut partitions, &router, replay)?;
            report.path = if persisted {
                RecoveryPath::TailReplay
            } else {
                RecoveryPath::FullReplay
            };
            (wal, report)
        } else {
            let wal = Wal::create(
                &wal_path,
                config.wal_block_size,
                config.wal_key(),
                config.sync,
                counters.clone(),
            )?;
            // The file's directory entry must be durable too, or a crash
            // could leave a database directory with no log at all.
            sync_dir(db_dir)?;
            (wal, RecoveryReport::default())
        };

        // Persist the layout facts (last, once stores + log exist) so the
        // next open can refuse incompatible configurations.
        let meta = EngineMeta::of(&config);
        if stored_meta != Some(meta) {
            meta.write(db_dir)?;
        }

        Ok(Arc::new(SksDb {
            partitions: partitions.into_iter().map(RwLock::new).collect(),
            router,
            wal: Mutex::new(wal),
            counters,
            recovery,
            wal_path,
            config,
        }))
    }

    /// A session handle for one logical client. Sessions are cheap clones
    /// of the shared engine and are `Send`, one per thread.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            db: Arc::clone(self),
        }
    }

    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Aggregated operation counters across WAL and every partition.
    pub fn snapshot(&self) -> OpSnapshot {
        self.counters.snapshot()
    }

    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    pub fn len(&self) -> u64 {
        self.partition_lens().iter().sum()
    }

    /// Per-partition key counts (router balance observability).
    pub fn partition_lens(&self) -> Vec<u64> {
        self.partitions
            .iter()
            .map(|p| p.read().expect("partition lock").len())
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current logical size of the WAL in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.lock().expect("wal lock").len_bytes()
    }

    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        let p = self.router.partition_of(key)?;
        let tree = self.partitions[p].read().expect("partition lock");
        Ok(tree.get(key)?)
    }

    /// Inserts (or replaces) the record under `key`.
    ///
    /// Failure semantics: an error from the WAL *commit* step (e.g. an
    /// fsync failure) leaves the operation's outcome indeterminate — the
    /// record may already sit durably in the log even though the error
    /// was returned. The WAL fail-stops on such errors (every later write
    /// returns [`EngineError::WalPoisoned`]); reopening the database
    /// replays the log and decides the final outcome, exactly as a crash
    /// at commit time would.
    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<Option<Vec<u8>>, EngineError> {
        let p = self.router.partition_of(key)?;
        let mut tree = self.partitions[p].write().expect("partition lock");
        {
            let mut wal = self.wal.lock().expect("wal lock");
            wal.append_insert(key, &value)?;
            wal.commit()?;
        }
        Ok(tree.insert(key, value)?)
    }

    /// Removes `key`. Same commit-failure semantics as [`SksDb::insert`].
    pub fn delete(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        let p = self.router.partition_of(key)?;
        let mut tree = self.partitions[p].write().expect("partition lock");
        {
            let mut wal = self.wal.lock().expect("wal lock");
            wal.append_delete(key)?;
            wal.commit()?;
        }
        Ok(tree.delete(key)?)
    }

    /// Range scan `lo..=hi` across all partitions, merged in key order.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        let mut out = Vec::new();
        for part in &self.partitions {
            let tree = part.read().expect("partition lock");
            out.extend(tree.range(lo, hi)?);
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }

    /// Forces every pending WAL byte to stable storage.
    pub fn flush(&self) -> Result<(), EngineError> {
        self.wal.lock().expect("wal lock").flush()
    }

    /// Structural validation of every partition.
    pub fn validate(&self) -> Result<(), EngineError> {
        for part in &self.partitions {
            part.read().expect("partition lock").validate()?;
        }
        Ok(())
    }

    /// Checkpoint: truncates the replay work a reopen must do, then
    /// resumes logging in a fresh WAL.
    ///
    /// * **Memory backend** — the log *is* the durable state, so the
    ///   current contents are snapshotted as a fresh run of insert records
    ///   in a new log (returned count = live records written).
    /// * **File backend** — the trees themselves are durable: every
    ///   partition's dirty pages are flushed through the journaled
    ///   page-store checkpoint, after which the log holds nothing the
    ///   disk image doesn't; the WAL is simply truncated to empty
    ///   (returned count = 0). Recovery then replays only the tail of
    ///   writes that arrive after this call.
    ///
    /// Crash safety: the old WAL is replaced only *after* the new durable
    /// state (snapshot log or flushed pages) is on disk, via an atomic
    /// rename + directory fsync. A crash anywhere in between recovers
    /// from the old log; replaying it over already-flushed pages
    /// converges because record pointers are never reused and logged
    /// operations are last-writer-wins per key.
    pub fn checkpoint(&self) -> Result<u64, EngineError> {
        // Write lock every partition (index order — the only multi-
        // partition lock site, so no ordering conflicts), freezing a
        // consistent global state.
        let mut guards: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.write().expect("partition lock"))
            .collect();
        let mut wal = self.wal.lock().expect("wal lock");

        let tmp_path = self.wal_path.with_extension("tmp");
        // Detached counters while the snapshot is written: the internal
        // rewrite is not client traffic and must not inflate
        // wal_appends/wal_bytes.
        let mut fresh = Wal::create(
            &tmp_path,
            self.config.wal_block_size,
            self.config.wal_key(),
            self.config.sync,
            OpCounters::new(),
        )?;
        let mut written = 0u64;
        if self.config.scheme.backend.is_file() {
            // Durability lives in the tree pages: make them so.
            for guard in &mut guards {
                guard.flush()?;
            }
        } else {
            // Stream the snapshot in bounded key windows so peak memory is
            // one window per step, not a full-partition clone held while
            // every write lock is stalled. Keys live in `0..=capacity` by
            // construction (SchemeConfig's domain), so the sweep
            // terminates.
            const WINDOW: u64 = 4096;
            let max_key = self.config.scheme.capacity;
            for guard in &guards {
                let mut lo = 0u64;
                loop {
                    let hi = lo.saturating_add(WINDOW - 1).min(max_key);
                    for (key, value) in guard.range(lo, hi)? {
                        fresh.append_insert(key, &value)?;
                        written += 1;
                    }
                    if hi >= max_key {
                        break;
                    }
                    lo = hi + 1;
                }
            }
        }
        fresh.flush()?;
        std::fs::rename(&tmp_path, &self.wal_path)?;
        // fsync the directory: without it the rename itself is not
        // durable, and a power failure could revert to the old log even
        // though later commits fsynced the new inode's data.
        sync_dir(self.wal_path.parent().expect("wal lives in the db dir"))?;
        // The fresh Wal's file handle survives the rename (same inode);
        // from here on it carries client traffic, so it re-adopts the
        // engine's shared counters.
        fresh.adopt_counters(self.counters.clone());
        *wal = fresh;
        Ok(written)
    }

    /// Flushes every partition's pages and the WAL to stable storage
    /// without truncating the log — a graceful-shutdown helper for the
    /// file backend (the next open still tail-replays, but the page
    /// stores are current).
    pub fn flush_pages(&self) -> Result<(), EngineError> {
        let mut guards: Vec<_> = self
            .partitions
            .iter()
            .map(|p| p.write().expect("partition lock"))
            .collect();
        for guard in &mut guards {
            guard.flush()?;
        }
        self.wal.lock().expect("wal lock").flush()
    }
}

/// Makes directory-entry mutations (create, rename) durable.
fn sync_dir(dir: &Path) -> Result<(), EngineError> {
    Ok(sks_storage::sync_dir(dir)?)
}

impl std::fmt::Debug for SksDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SksDb")
            .field("partitions", &self.partitions.len())
            .field("scheme", &self.config.scheme.scheme)
            .field("wal_path", &self.wal_path)
            .finish()
    }
}

/// Per-client handle: a cheap, `Send` clone of the shared engine. The
/// unmodified-DBMS fiction of the paper maps here: a session speaks plain
/// `get/insert/delete/range` over plaintext keys and never sees disguises,
/// seals, partitions or the log.
#[derive(Clone, Debug)]
pub struct Session {
    db: Arc<SksDb>,
}

impl Session {
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.get(key)
    }

    pub fn insert(&self, key: u64, value: Vec<u8>) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.insert(key, value)
    }

    pub fn delete(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.db.delete(key)
    }

    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        self.db.range(lo, hi)
    }

    pub fn db(&self) -> &Arc<SksDb> {
        &self.db
    }
}

// Sessions are handed to worker threads; the engine is shared behind Arc.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SksDb>();
    assert_send_sync::<Session>();
};
