//! Crash recovery: replaying a WAL into the partitioned tree on open.
//!
//! What replay costs depends on the backend. With memory-backed trees
//! (the paper's experimental setup) the log is the *only* durable state,
//! so the entire history since the last checkpoint rewrite is replayed —
//! [`RecoveryPath::FullReplay`]. With the file backend the checkpointed
//! tree pages are already on disk; the persisted partitions are opened
//! and only the WAL *tail* (writes since the last checkpoint) is
//! replayed — [`RecoveryPath::TailReplay`], an O(tail) restart. Either
//! way records go through the same router/partition path a live write
//! takes, so the recovered state is bit-for-bit the state a non-crashed
//! process would hold.
//!
//! Tail replay is sound against a checkpoint that was interrupted
//! half-way: re-applying a log whose effects are partially present
//! converges, because record pointers are never reused (the data store
//! only ever appends) and every logged operation has last-writer-wins
//! semantics on its key.

use std::collections::BTreeMap;

use sks_core::EncipheredBTree;
use sks_storage::{Event, Stage};

use crate::db::Router;
use crate::error::EngineError;
use crate::wal::{WalOp, WalRecord, WalReplay};

/// Which recovery path [`crate::SksDb::open`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPath {
    /// Fresh database: no log existed, nothing to recover.
    #[default]
    ColdStart,
    /// Memory backend (or missing on-disk partitions): the whole state
    /// was rebuilt by replaying the entire log.
    FullReplay,
    /// File backend: persisted partitions were opened from their
    /// checkpointed pages and only the log tail was replayed.
    TailReplay,
}

/// What recovery did at open time.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Which path recovery took (see [`RecoveryPath`]).
    pub path: RecoveryPath,
    /// Intact records replayed into the tree.
    pub records_replayed: u64,
    /// Records whose re-application failed (e.g. a logged key that no
    /// longer fits the configured domain) — skipped, not fatal.
    pub records_skipped: u64,
    /// Whether the log ended in an interrupted write.
    pub torn_tail: bool,
    /// Bytes discarded past the last intact record.
    pub bytes_discarded: u64,
    /// Highest sequence number recovered (0 when the log was empty).
    pub last_seq: u64,
    /// The flight-recorder timeline captured at the end of recovery:
    /// `RecoveryStart`, any `TornTailScrub` the log open performed (its
    /// `a`/`b` payload names the scrub position and the bytes
    /// discarded), and `RecoveryEnd`. Empty when observability is off.
    pub events: Vec<Event>,
}

impl RecoveryReport {
    /// The recovery timeline rendered one line per event — the
    /// flight-recorder dump that accompanies this report.
    pub fn render_events(&self) -> String {
        self.events
            .iter()
            .map(Event::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Applies replayed records to the partitions. Takes the replay by value
/// so record payloads move into the trees instead of being cloned (the
/// WAL holds the whole dataset between checkpoints; cloning would double
/// peak memory at open).
///
/// Records route to their partitions first — partitions are independent
/// (the router is deterministic per key), so each partition's run can be
/// applied as one batch while relative order within it is preserved. A
/// pristine partition takes the batched path: the run folds into its
/// final image (last writer wins, deletes erase) and the tree builds
/// bottom-up through `bulk_load`, paying batch seal cost instead of one
/// sealed mutation per record. A partition that already holds data (the
/// file backend's tail replay) keeps the exact per-record path.
pub(crate) fn apply_replay(
    partitions: &mut [EncipheredBTree],
    router: &Router,
    replay: WalReplay,
) -> Result<RecoveryReport, EngineError> {
    let mut report = RecoveryReport {
        torn_tail: replay.torn_tail,
        bytes_discarded: replay.bytes_discarded,
        ..RecoveryReport::default()
    };
    let mut groups: Vec<Vec<WalOp>> = (0..partitions.len()).map(|_| Vec::new()).collect();
    for WalRecord { seq, op } in replay.records {
        report.last_seq = seq;
        let key = match op {
            WalOp::Insert { key, .. } | WalOp::Delete { key } => key,
        };
        match router.partition_of(key) {
            Ok(p) => groups[p].push(op),
            Err(_) => report.records_skipped += 1,
        }
    }
    for (p, mut ops) in groups.into_iter().enumerate() {
        if ops.is_empty() {
            continue;
        }
        let tree = &mut partitions[p];
        if tree.is_empty() && ops.len() > 1 {
            let t = tree.counters().obs().start();
            // Fold the run into its final image: for each surviving key,
            // the index of the insert whose value wins.
            let mut winners: BTreeMap<u64, usize> = BTreeMap::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    WalOp::Insert { key, .. } => {
                        winners.insert(*key, i);
                    }
                    WalOp::Delete { key } => {
                        winners.remove(key);
                    }
                }
            }
            let mut items: Vec<(u64, Vec<u8>)> = Vec::with_capacity(winners.len());
            for (&key, &i) in &winners {
                let WalOp::Insert { value, .. } = &mut ops[i] else {
                    unreachable!("winner indices point at inserts");
                };
                items.push((key, std::mem::take(value)));
            }
            match tree.bulk_load(&items) {
                Ok(()) => {
                    report.records_replayed += ops.len() as u64;
                    tree.counters().bump(|c| &c.replay_batches);
                    tree.counters().obs().stage(Stage::ReplayBatch, t);
                    continue;
                }
                Err(_) => {
                    // Rare (e.g. a logged record no longer fits the
                    // configured blocks — bulk_load is all-or-nothing).
                    // Put the payloads back and take the exact
                    // per-record path below, which skips only the
                    // failing records.
                    for (item, (_, &i)) in items.iter_mut().zip(&winners) {
                        let WalOp::Insert { value, .. } = &mut ops[i] else {
                            unreachable!("winner indices point at inserts");
                        };
                        *value = std::mem::take(&mut item.1);
                    }
                }
            }
        }
        for op in ops {
            let applied = match op {
                WalOp::Insert { key, value } => tree.insert(key, value),
                WalOp::Delete { key } => tree.delete(key),
            };
            match applied {
                Ok(_) => report.records_replayed += 1,
                Err(_) => report.records_skipped += 1,
            }
        }
    }
    Ok(report)
}
