//! Multi-key transactions: snapshot reads and atomic cross-partition
//! commits over the partitioned engine.
//!
//! The design is MVCC turned inside out. The trees always hold the
//! *newest* committed state — exactly what the read-committed fast paths
//! want — and the `TxnManager` keeps a small **undo-version overlay**:
//! for every key overwritten while at least one snapshot is live, the
//! value it had *before* each post-snapshot commit. A snapshot read takes
//! the current tree value and rewinds it through the overlay to the
//! transaction's begin epoch. With no transaction open the overlay is
//! empty and every mutation pays one uncontended mutex probe — the
//! paper's logical counters never move (the overlay clones values only
//! while snapshots are live, and cloning is not a counted operation).
//!
//! Isolation level: **snapshot isolation**. Reads (and range scans) see
//! the database exactly as of `begin`, plus the transaction's own
//! buffered writes; commits validate first-committer-wins on the write
//! set (a key committed by anyone else after our snapshot ⇒
//! [`EngineError::Conflict`]). Write skew between disjoint write sets is
//! possible, as in any SI engine. Snapshot reads never block writers:
//! they take the same short per-partition read locks a read-committed
//! `get` takes, so they wait only while a commit is mid-apply on that
//! one partition — never on the whole database, and never on the WAL.
//!
//! Atomicity and durability: a multi-key commit is one sealed
//! [`crate::Wal`] frame (all-or-nothing under torn-tail recovery), and a
//! commit spanning ≥ 2 partitions always pays its fsync *before* any
//! tree effect becomes visible, so no crash can persist half of it
//! through a fuzzy checkpoint's page flush. Deadlock freedom: commit
//! acquires its partitions' write locks in ascending partition-id order,
//! the same global order every other multi-lock path uses.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sks_storage::{EventKind, NO_PARTITION};

use crate::db::SksDb;
use crate::error::EngineError;

/// Volatile zero of plaintext bytes buffered by the overlay or a
/// transaction's write set (same discipline as the WAL staging buffer).
fn wipe(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

fn wipe_prior(prior: &mut Option<Vec<u8>>) {
    if let Some(v) = prior {
        wipe(v);
    }
}

/// `(key, value before the commit)` pairs — `None` = the key did not
/// exist. What a commit reports to the overlay and what `rewind` serves.
pub(crate) type KeyPriors = Vec<(u64, Option<Vec<u8>>)>;

/// Undo entries and live-snapshot registry. One per engine, shared by
/// every commit path (explicit transactions *and* implicit autocommit
/// ops — the overlay must see every commit or snapshots would tear).
#[derive(Debug, Default)]
struct VersionInner {
    /// Live snapshot epochs → reference count.
    snapshots: BTreeMap<u64, usize>,
    /// key → ascending `(commit_epoch, value before that commit)`.
    /// `None` means the key did not exist before the commit. Entries are
    /// recorded only while ≥ 1 snapshot is live and pruned as snapshots
    /// release, so the overlay is empty whenever no transaction is open.
    versions: BTreeMap<u64, KeyPriors>,
}

/// The engine's transaction heart: the global commit epoch, the live
/// snapshots, and the undo-version overlay.
#[derive(Debug)]
pub(crate) struct TxnManager {
    /// Commit epoch: incremented once per committed group (an autocommit
    /// op, one `insert_batch` partition group, or one explicit txn).
    epoch: AtomicU64,
    inner: Mutex<VersionInner>,
}

impl TxnManager {
    pub(crate) fn new() -> Self {
        TxnManager {
            epoch: AtomicU64::new(0),
            inner: Mutex::new(VersionInner::default()),
        }
    }

    /// Registers a live snapshot at the current epoch and returns it.
    /// The epoch read happens under the same mutex `note_commit` bumps
    /// it under, so a registration and a commit can never interleave in
    /// a way that loses undo entries the snapshot will need.
    pub(crate) fn begin_snapshot(&self) -> u64 {
        let mut inner = self.inner.lock().expect("txn manager");
        let epoch = self.epoch.load(Ordering::Acquire);
        *inner.snapshots.entry(epoch).or_insert(0) += 1;
        epoch
    }

    /// Releases a snapshot and prunes overlay entries no remaining
    /// snapshot can need (an entry at epoch `e` serves snapshots older
    /// than `e` only). Pruned values are wiped before they are freed.
    pub(crate) fn release_snapshot(&self, epoch: u64) {
        let mut inner = self.inner.lock().expect("txn manager");
        if let Some(n) = inner.snapshots.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                inner.snapshots.remove(&epoch);
            }
        }
        match inner.snapshots.keys().next().copied() {
            None => {
                for entries in inner.versions.values_mut() {
                    for (_, prior) in entries.iter_mut() {
                        wipe_prior(prior);
                    }
                }
                inner.versions.clear();
            }
            Some(min_live) => {
                inner.versions.retain(|_, entries| {
                    entries.retain_mut(|(e, prior)| {
                        if *e > min_live {
                            true
                        } else {
                            wipe_prior(prior);
                            false
                        }
                    });
                    !entries.is_empty()
                });
            }
        }
    }

    /// Records one committed group: assigns it the next commit epoch
    /// and, when any snapshot is live, stores each written key's prior
    /// value in the overlay. Must be called while every affected
    /// partition's write lock is still held — that is what makes the
    /// commit atomic to snapshot readers (they either wait out the whole
    /// apply or rewind through the entries recorded here).
    pub(crate) fn note_commit(&self, priors: KeyPriors) -> u64 {
        let mut inner = self.inner.lock().expect("txn manager");
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        if !inner.snapshots.is_empty() {
            for (key, prior) in priors {
                inner.versions.entry(key).or_default().push((epoch, prior));
            }
        }
        epoch
    }

    /// [`TxnManager::note_commit`] with the priors built lazily, so the
    /// single-op fast paths clone an old value only when a snapshot is
    /// actually live.
    pub(crate) fn note_commit_with(&self, priors: impl FnOnce() -> KeyPriors) -> u64 {
        let mut inner = self.inner.lock().expect("txn manager");
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        if !inner.snapshots.is_empty() {
            for (key, prior) in priors() {
                inner.versions.entry(key).or_default().push((epoch, prior));
            }
        }
        epoch
    }

    /// First-committer-wins validation: the first written key the overlay
    /// says was committed by someone else after `snapshot`, if any. Must
    /// run under the write set's partition write locks (so no competing
    /// commit can slip between validation and this commit's own frame);
    /// sound because the caller's own snapshot keeps every post-snapshot
    /// entry retained.
    pub(crate) fn conflict(
        &self,
        keys: impl IntoIterator<Item = u64>,
        snapshot: u64,
    ) -> Option<u64> {
        let inner = self.inner.lock().expect("txn manager");
        keys.into_iter().find(|k| {
            inner
                .versions
                .get(k)
                .is_some_and(|entries| entries.iter().any(|(e, _)| *e > snapshot))
        })
    }

    /// Rewinds one key's current tree value to what snapshot `snapshot`
    /// saw: the prior of the *first* commit after the snapshot, if the
    /// overlay holds one; the current value otherwise.
    pub(crate) fn rewind(
        &self,
        key: u64,
        snapshot: u64,
        current: Option<Vec<u8>>,
    ) -> Option<Vec<u8>> {
        let inner = self.inner.lock().expect("txn manager");
        match inner
            .versions
            .get(&key)
            .and_then(|entries| entries.iter().find(|(e, _)| *e > snapshot))
        {
            Some((_, prior)) => prior.clone(),
            None => current,
        }
    }

    /// Rewinds a merged range-scan result to snapshot `snapshot`:
    /// post-snapshot overwrites are replaced by their priors, deletions
    /// are resurrected, and post-snapshot inserts vanish.
    pub(crate) fn rewind_range(
        &self,
        lo: u64,
        hi: u64,
        snapshot: u64,
        rows: Vec<(u64, Vec<u8>)>,
    ) -> Vec<(u64, Vec<u8>)> {
        let inner = self.inner.lock().expect("txn manager");
        if inner.versions.is_empty() {
            return rows;
        }
        let mut map: BTreeMap<u64, Vec<u8>> = rows.into_iter().collect();
        for (key, entries) in inner.versions.range(lo..=hi) {
            if let Some((_, prior)) = entries.iter().find(|(e, _)| *e > snapshot) {
                match prior {
                    Some(v) => {
                        map.insert(*key, v.clone());
                    }
                    None => {
                        map.remove(key);
                    }
                }
            }
        }
        map.into_iter().collect()
    }

    /// Overlay entry count (tests: must drain to zero when the last
    /// snapshot releases).
    #[doc(hidden)]
    pub(crate) fn overlay_len(&self) -> usize {
        let inner = self.inner.lock().expect("txn manager");
        inner.versions.values().map(Vec::len).sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    Active,
    /// Committed or cleanly aborted — the handle is spent.
    Finished,
    /// A commit attempt died mid-flight (WAL error); effects unknown
    /// until reopen.
    Poisoned,
}

/// One multi-key transaction: snapshot reads as of `begin`, buffered
/// writes (read-your-own-writes), and an atomic commit.
///
/// Obtained from [`crate::Session::begin`] (or [`SksDb::begin`]). Writes
/// buffer in memory — nothing touches the WAL or the trees until
/// [`Txn::commit`], which validates first-committer-wins against the
/// snapshot, seals every write into **one** WAL commit frame, and
/// applies to all partitions under their write locks (taken in ascending
/// partition order — the engine's global lock order) so no reader ever
/// observes half of it. Dropping an uncommitted transaction aborts it.
///
/// A single-key commit degenerates to exactly the autocommit write path
/// — same legacy WAL framing, same counters — plus the conflict check.
pub struct Txn {
    db: Arc<SksDb>,
    snapshot: u64,
    /// Buffered writes: key → (its partition, `Some` = insert/overwrite,
    /// `None` = delete). The partition is routed (and the key's domain
    /// checked) once, at buffering time — the same one-disguise-per-key
    /// cost the autocommit path pays.
    writes: BTreeMap<u64, (usize, Option<Vec<u8>>)>,
    state: TxnState,
}

impl Txn {
    pub(crate) fn begin(db: Arc<SksDb>) -> Txn {
        let snapshot = db.txns().begin_snapshot();
        let counters = db.counters();
        counters.bump(|c| &c.txn_begins);
        counters
            .obs()
            .note(EventKind::TxnBegin, NO_PARTITION, snapshot, 0, 0);
        Txn {
            db,
            snapshot,
            writes: BTreeMap::new(),
            state: TxnState::Active,
        }
    }

    /// The commit epoch this transaction's reads see.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot
    }

    fn check_active(&self) -> Result<(), EngineError> {
        match self.state {
            TxnState::Active => Ok(()),
            TxnState::Finished => Err(EngineError::TxnAborted),
            TxnState::Poisoned => Err(EngineError::TxnPoisoned),
        }
    }

    /// Snapshot point read: this transaction's own buffered write if
    /// any, else the database as of `begin`.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, EngineError> {
        self.check_active()?;
        if let Some((_, buffered)) = self.writes.get(&key) {
            return Ok(buffered.clone());
        }
        self.db.snapshot_get(key, self.snapshot)
    }

    /// Snapshot range scan `lo..=hi`, merged across partitions with this
    /// transaction's own buffered writes overlaid.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, EngineError> {
        self.check_active()?;
        let rows = self.db.snapshot_range(lo, hi, self.snapshot)?;
        if self.writes.range(lo..=hi).next().is_none() {
            return Ok(rows);
        }
        let mut map: BTreeMap<u64, Vec<u8>> = rows.into_iter().collect();
        for (key, (_, value)) in self.writes.range(lo..=hi) {
            match value {
                Some(v) => {
                    map.insert(*key, v.clone());
                }
                None => {
                    map.remove(key);
                }
            }
        }
        Ok(map.into_iter().collect())
    }

    /// Buffers an insert (or overwrite). Validated against the key
    /// domain immediately; durable only at [`Txn::commit`].
    pub fn insert(&mut self, key: u64, value: Vec<u8>) -> Result<(), EngineError> {
        self.check_active()?;
        let p = self.db.partition_of(key)?; // domain check before buffering
        if let Some((_, Some(old))) = self.writes.insert(key, (p, Some(value))) {
            let mut old = old;
            wipe(&mut old);
        }
        Ok(())
    }

    /// Buffers a delete.
    pub fn delete(&mut self, key: u64) -> Result<(), EngineError> {
        self.check_active()?;
        let p = self.db.partition_of(key)?;
        if let Some((_, Some(old))) = self.writes.insert(key, (p, None)) {
            let mut old = old;
            wipe(&mut old);
        }
        Ok(())
    }

    /// Keys currently buffered for write.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Atomically commits every buffered write. On
    /// [`EngineError::Conflict`] nothing was written and the transaction
    /// is aborted — begin a new one to retry. On any other error the
    /// transaction is poisoned: the commit frame may or may not be
    /// durable, and reopening the database decides (all-or-nothing,
    /// exactly like a crash at commit time).
    pub fn commit(&mut self) -> Result<(), EngineError> {
        self.commit_with_hook(|| {})
    }

    /// [`Txn::commit`] with a test hook invoked mid-commit — after
    /// first-committer-wins validation, while every written partition's
    /// write lock is held and before the WAL frame is sealed.
    /// Concurrency tests use it to require that snapshot readers on
    /// *other* partitions progress while a commit is in flight.
    #[doc(hidden)]
    pub fn commit_with_hook(&mut self, mid: impl FnOnce()) -> Result<(), EngineError> {
        self.check_active()?;
        let writes = std::mem::take(&mut self.writes);
        let counters = self.db.counters().clone();
        if writes.is_empty() {
            self.finish();
            counters.bump(|c| &c.txn_commits);
            counters
                .obs()
                .note(EventKind::TxnCommit, NO_PARTITION, 0, 0, 0);
            return Ok(());
        }
        match self.db.commit_txn_with_hook(writes, self.snapshot, mid) {
            Ok(()) => {
                self.finish();
                counters.bump(|c| &c.txn_commits);
                Ok(())
            }
            Err(e @ EngineError::Conflict { .. }) => {
                // Validation refused before anything touched the WAL or
                // a tree: a clean, retryable abort.
                self.finish();
                counters.bump(|c| &c.txn_aborts);
                Err(e)
            }
            Err(e) => {
                self.state = TxnState::Poisoned;
                self.db.txns().release_snapshot(self.snapshot);
                counters.bump(|c| &c.txn_aborts);
                Err(e)
            }
        }
    }

    /// Aborts: discards the buffered writes (wiped) and releases the
    /// snapshot. Dropping an active transaction does the same.
    pub fn abort(&mut self) -> Result<(), EngineError> {
        self.check_active()?;
        let buffered = self.writes.len() as u64;
        self.discard_writes();
        self.finish();
        let counters = self.db.counters();
        counters.bump(|c| &c.txn_aborts);
        counters
            .obs()
            .note(EventKind::TxnAbort, NO_PARTITION, buffered, 0, 0);
        Ok(())
    }

    fn discard_writes(&mut self) {
        for (_, (_, value)) in self.writes.iter_mut() {
            if let Some(v) = value {
                wipe(v);
            }
        }
        self.writes.clear();
    }

    fn finish(&mut self) {
        self.state = TxnState::Finished;
        self.db.txns().release_snapshot(self.snapshot);
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if self.state == TxnState::Active {
            let buffered = self.writes.len() as u64;
            self.discard_writes();
            self.finish();
            let counters = self.db.counters();
            counters.bump(|c| &c.txn_aborts);
            counters
                .obs()
                .note(EventKind::TxnAbort, NO_PARTITION, buffered, 0, 0);
        }
    }
}

impl std::fmt::Debug for Txn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("snapshot", &self.snapshot)
            .field("pending_writes", &self.writes.len())
            .field("state", &self.state)
            .finish()
    }
}
