//! Write-ahead log layered on an `sks-storage` [`FileDisk`].
//!
//! Logical model: an append-only byte stream of self-checking records,
//! packed across fixed-size blocks of a [`FileDisk`] (records straddle
//! block boundaries; blocks are used strictly sequentially, the free list
//! is never touched). Each record is
//!
//! ```text
//! tag(1)=0xA5 ‖ crc32(4) ‖ seq(8) ‖ nonce(8) ‖ blen(4) ‖ E(op ‖ key ‖ value)
//! ```
//!
//! with the CRC covering `seq ‖ nonce ‖ blen ‖ ciphertext`. The body —
//! operation, search key and record value — is sealed with an independent
//! stream cipher (Speck64-CTR keyed from the engine's WAL key, fresh
//! random per-record nonce stored in the clear so no two records ever
//! share keystream, even across checkpoint rewrites or torn-tail
//! rewrites). The log is the database's only durable representation, so
//! leaving it plaintext would hand the paper's opponent everything the
//! disguised tree withholds; sealing it keeps the §5 discipline that
//! stored key material is never readable off the medium.
//!
//! Record `seq 1` is a *key-check sentinel*: a sealed constant written at
//! creation. Opening with the wrong key decrypts the sentinel to garbage
//! and fails closed with a configuration error — it never touches the
//! data, so a mistyped key cannot destroy a log it cannot read.
//!
//! Replay accepts records while the tag, CRC and the strictly-increasing
//! sequence number all hold, and treats the first violation as the torn
//! tail of an interrupted write: everything before it is recovered,
//! everything after is scrubbed back to zeros so a later replay cannot
//! resurrect stale bytes.
//!
//! Durability follows a [`SyncPolicy`]: `Always` forces the device on
//! every commit; `EveryN(n)` is group commit — the block writes happen per
//! commit (so a process crash loses nothing) but only every `n`-th commit
//! pays the physical fsync (so a power failure can lose at most the last
//! `n − 1` commits). Those bounds assume the standard WAL storage model:
//! rewriting the partially-filled tail block preserves its unchanged
//! leading sectors (sector-level write atomicity), so a torn tail-block
//! write can damage at most the records not yet fsynced. Any I/O error in
//! the append path fail-stops the handle ([`EngineError::WalPoisoned`]):
//! a half-written record must not be built upon, and reopening replays
//! the log back to a consistent prefix.

use std::path::Path;
use std::sync::{mpsc, Arc, Condvar, Mutex};

use sks_crypto::modes::ctr_xor;
use sks_crypto::speck::Speck64;
use sks_storage::{
    crc32, BlockId, BlockStore, EventKind, FailStore, FileDisk, OpCounters, Stage, StorageError,
    SyncPolicy, NO_PARTITION,
};

use crate::error::EngineError;

/// The device surface a [`Wal`] needs: sequential block writes, partial
/// reads for torn-tail recovery, a physical sync, and counter
/// re-pointing. [`FileDisk`] is the production device; a
/// [`FailStore<FileDisk>`] implements it too, so crash probes can tear a
/// WAL write mid-group-commit and watch recovery scrub the tail.
pub trait WalDevice {
    fn block_size(&self) -> usize;
    fn num_blocks(&self) -> u32;
    fn allocate(&mut self) -> Result<BlockId, StorageError>;
    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError>;
    /// Best-effort read returning however many bytes exist (zero-padded);
    /// see [`FileDisk::read_block_partial`].
    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError>;
    fn sync(&mut self) -> Result<(), StorageError>;
    fn set_counters(&mut self, counters: OpCounters);
}

impl WalDevice for FileDisk {
    fn block_size(&self) -> usize {
        BlockStore::block_size(self)
    }

    fn num_blocks(&self) -> u32 {
        BlockStore::num_blocks(self)
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        BlockStore::allocate(self)
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        BlockStore::write_block(self, id, data)
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        FileDisk::read_block_partial(self, id)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        FileDisk::sync(self)
    }

    fn set_counters(&mut self, counters: OpCounters) {
        FileDisk::set_counters(self, counters);
    }
}

impl WalDevice for FailStore<FileDisk> {
    fn block_size(&self) -> usize {
        BlockStore::block_size(self)
    }

    fn num_blocks(&self) -> u32 {
        BlockStore::num_blocks(self)
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        BlockStore::allocate(self)
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        BlockStore::write_block(self, id, data)
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        // Reads keep working after the plan trips (inspecting the
        // wreckage is the point of a crash probe).
        self.inner().read_block_partial(id)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        // Routes through the plan so `arm_nth_flush` can kill a sync.
        BlockStore::flush(self)
    }

    fn set_counters(&mut self, counters: OpCounters) {
        self.inner_mut().set_counters(counters);
    }
}

/// The device the engine's own WAL runs on: the production [`FileDisk`],
/// or the same disk behind a [`FailStore`] when an [`crate::EngineConfig`]
/// carries a fault plan (the op-sequence fuzzer's crash kill points). One
/// concrete type (rather than making `SksDb` generic) keeps the fault seam
/// available on every engine WAL — including the fresh log a checkpoint
/// builds — at the cost of a single match per device call.
#[derive(Debug)]
pub enum EngineWalDisk {
    Plain(FileDisk),
    Fault(FailStore<FileDisk>),
}

impl EngineWalDisk {
    /// Wraps `disk` under `fault` when a plan is present.
    pub fn wrap(disk: FileDisk, fault: Option<&sks_storage::FailPlan>) -> Self {
        match fault {
            None => EngineWalDisk::Plain(disk),
            Some(plan) => EngineWalDisk::Fault(FailStore::with_plan(disk, plan.clone())),
        }
    }
}

impl WalDevice for EngineWalDisk {
    fn block_size(&self) -> usize {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::block_size(d),
            EngineWalDisk::Fault(d) => WalDevice::block_size(d),
        }
    }

    fn num_blocks(&self) -> u32 {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::num_blocks(d),
            EngineWalDisk::Fault(d) => WalDevice::num_blocks(d),
        }
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::allocate(d),
            EngineWalDisk::Fault(d) => WalDevice::allocate(d),
        }
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::write_block(d, id, data),
            EngineWalDisk::Fault(d) => WalDevice::write_block(d, id, data),
        }
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::read_block_partial(d, id),
            EngineWalDisk::Fault(d) => WalDevice::read_block_partial(d, id),
        }
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::sync(d),
            EngineWalDisk::Fault(d) => WalDevice::sync(d),
        }
    }

    fn set_counters(&mut self, counters: OpCounters) {
        match self {
            EngineWalDisk::Plain(d) => WalDevice::set_counters(d, counters),
            EngineWalDisk::Fault(d) => WalDevice::set_counters(d, counters),
        }
    }
}

// ---------------------------------------------------------------------------
// Double-buffered writer: a WalDevice that overlaps block writes and
// fsyncs with the caller's next batch seal.
// ---------------------------------------------------------------------------

/// A queued unit of work for the writer thread.
enum WriterJob {
    Write {
        id: BlockId,
        data: Vec<u8>,
    },
    /// An fsync enqueued behind the writes it must cover; completion is
    /// reported through [`SyncState`] to the matching [`SyncTicket`].
    Sync {
        ticket: u64,
    },
}

/// Completion state for fsyncs executed asynchronously on the writer
/// thread. Deliberately not generic over the device, so a [`SyncTicket`]
/// can be waited on after every `Wal` lock has been released.
struct SyncState {
    /// Highest completed ticket, and the first error any asynchronous
    /// sync surfaced (sticky, mirroring `WriterShared::error`).
    done: Mutex<(u64, Option<StorageError>)>,
    completed: Condvar,
}

/// State shared between the foreground handle and the writer thread.
struct WriterShared<D> {
    disk: Mutex<D>,
    /// Jobs enqueued but not yet executed; `sync`/reads drain to zero.
    inflight: Mutex<u32>,
    drained: Condvar,
    /// First error the writer thread hit. Sticky: once an asynchronous
    /// write has failed the stream past it is unknowable, so every later
    /// device call fails until the log is reopened (the `Wal` turns the
    /// first surfaced error into its poison fail-stop).
    error: Mutex<Option<StorageError>>,
    syncs: Arc<SyncState>,
}

/// Handle to one asynchronous WAL fsync. The commit that produced it is
/// durable only once `wait` returns `Ok`; the caller must not acknowledge
/// the commit before then.
#[derive(Debug)]
pub struct SyncTicket {
    state: Arc<SyncState>,
    seq: u64,
}

impl std::fmt::Debug for SyncState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncState").finish()
    }
}

impl SyncTicket {
    /// Blocks until the fsync this ticket names has completed, surfacing
    /// the first error any asynchronous sync hit. The error is sticky:
    /// once one fsync has failed, the durability of everything after it
    /// is unknowable, so every later waiter fails too.
    pub fn wait(self) -> Result<(), StorageError> {
        let mut done = self.state.done.lock().expect("wal sync state");
        while done.0 < self.seq && done.1.is_none() {
            done = self.state.completed.wait(done).expect("wal sync state");
        }
        match &done.1 {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }
}

/// Double-buffered WAL device: `write_block` hands the sealed block to a
/// small writer thread through a two-slot channel (the two swap buffers)
/// and returns, so sealing batch N+1 overlaps the device write (and, at
/// the group-commit boundary, the fsync) of batch N. `sync` drains the
/// queue and then syncs the device, so every durability point the
/// [`SyncPolicy`] promises still holds exactly — the pipeline moves work
/// off the hot path, never past a commit's durability barrier. Reads
/// drain first too, so replay-style scans observe every queued write.
pub struct DoubleBuffered<D: WalDevice> {
    shared: Arc<WriterShared<D>>,
    /// `None` only during teardown.
    tx: Option<mpsc::SyncSender<WriterJob>>,
    handle: Option<std::thread::JoinHandle<()>>,
    counters: OpCounters,
    block_size: usize,
    /// Ticket the next [`DoubleBuffered::submit_sync`] will hand out.
    next_ticket: u64,
}

impl<D: WalDevice> std::fmt::Debug for DoubleBuffered<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoubleBuffered")
            .field("block_size", &self.block_size)
            .finish()
    }
}

/// Number of swap buffers: one block in flight on the device while the
/// foreground seals into the other.
const SWAP_BUFFERS: usize = 2;

impl<D: WalDevice + Send + 'static> DoubleBuffered<D> {
    fn new(disk: D, counters: OpCounters) -> Self {
        let block_size = disk.block_size();
        let shared = Arc::new(WriterShared {
            disk: Mutex::new(disk),
            inflight: Mutex::new(0),
            drained: Condvar::new(),
            error: Mutex::new(None),
            syncs: Arc::new(SyncState {
                done: Mutex::new((0, None)),
                completed: Condvar::new(),
            }),
        });
        let (tx, rx) = mpsc::sync_channel::<WriterJob>(SWAP_BUFFERS);
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sks-wal-writer".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        WriterJob::Write { id, data } => {
                            let result = worker
                                .disk
                                .lock()
                                .expect("wal device")
                                .write_block(id, &data);
                            if let Err(e) = result {
                                let mut slot = worker.error.lock().expect("wal writer error");
                                slot.get_or_insert(e);
                            }
                        }
                        WriterJob::Sync { ticket } => {
                            // A sync after a failed asynchronous write
                            // must not report durability the stream no
                            // longer has: the sticky write error wins
                            // over whatever the device would say now.
                            let prior = worker.error.lock().expect("wal writer error").clone();
                            let result = match prior {
                                Some(e) => Err(e),
                                None => worker.disk.lock().expect("wal device").sync(),
                            };
                            let mut done = worker.syncs.done.lock().expect("wal sync state");
                            done.0 = ticket;
                            if let Err(e) = result {
                                worker
                                    .error
                                    .lock()
                                    .expect("wal writer error")
                                    .get_or_insert(e.clone());
                                done.1.get_or_insert(e);
                            }
                            drop(done);
                            worker.syncs.completed.notify_all();
                        }
                    }
                    let mut inflight = worker.inflight.lock().expect("wal inflight");
                    *inflight -= 1;
                    worker.drained.notify_all();
                }
            })
            .expect("spawn wal writer thread");
        DoubleBuffered {
            shared,
            tx: Some(tx),
            handle: Some(handle),
            counters,
            block_size,
            next_ticket: 0,
        }
    }
}

impl<D: WalDevice> DoubleBuffered<D> {
    /// Blocks until every queued write has executed.
    fn drain(&self) {
        let mut inflight = self.shared.inflight.lock().expect("wal inflight");
        while *inflight > 0 {
            inflight = self.shared.drained.wait(inflight).expect("wal inflight");
        }
    }

    /// Surfaces (without clearing) the writer thread's first error.
    fn check_error(&self) -> Result<(), StorageError> {
        match &*self.shared.error.lock().expect("wal writer error") {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Enqueues an fsync behind every write accepted so far and returns a
    /// ticket to wait on *after* the caller has released its locks. The
    /// job channel is FIFO, so by the time the writer thread reaches the
    /// sync every earlier `write_block` has hit the device — the sync
    /// covers exactly the commits sealed before it was submitted, and
    /// the foreground is free to seal the next group meanwhile.
    fn submit_sync(&mut self) -> Result<SyncTicket, StorageError> {
        self.check_error()?;
        self.next_ticket += 1;
        let seq = self.next_ticket;
        *self.shared.inflight.lock().expect("wal inflight") += 1;
        let sent = self
            .tx
            .as_ref()
            .expect("writer channel open")
            .send(WriterJob::Sync { ticket: seq });
        if sent.is_err() {
            *self.shared.inflight.lock().expect("wal inflight") -= 1;
            self.check_error()?;
            return Err(StorageError::Io("wal writer thread exited".into()));
        }
        Ok(SyncTicket {
            state: Arc::clone(&self.shared.syncs),
            seq,
        })
    }
}

impl<D: WalDevice> Drop for DoubleBuffered<D> {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel; the thread drains and exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<D: WalDevice> WalDevice for DoubleBuffered<D> {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn num_blocks(&self) -> u32 {
        self.shared.disk.lock().expect("wal device").num_blocks()
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        self.check_error()?;
        self.shared.disk.lock().expect("wal device").allocate()
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        self.check_error()?;
        let mut inflight = self.shared.inflight.lock().expect("wal inflight");
        *inflight += 1;
        drop(inflight);
        let timer = self.counters.obs().start();
        let sent = self
            .tx
            .as_ref()
            .expect("writer channel open")
            .send(WriterJob::Write {
                id,
                data: data.to_vec(),
            });
        // The send blocks while both swap buffers are in flight — that
        // wait is the pipeline's back-pressure, reported as its own stage.
        self.counters.obs().stage(Stage::WalSwap, timer);
        if sent.is_err() {
            // Writer thread gone: surface whatever killed it.
            *self.shared.inflight.lock().expect("wal inflight") -= 1;
            self.check_error()?;
            return Err(StorageError::Io("wal writer thread exited".into()));
        }
        Ok(())
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        // Reads must observe every accepted write (records_since scans the
        // stream mid-life); drain, then read through. Reads keep working
        // after a write error — inspecting the wreckage is recovery's job.
        self.drain();
        self.shared
            .disk
            .lock()
            .expect("wal device")
            .read_block_partial(id)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.drain();
        self.check_error()?;
        self.shared.disk.lock().expect("wal device").sync()
    }

    fn set_counters(&mut self, counters: OpCounters) {
        self.drain();
        self.counters = counters.clone();
        self.shared
            .disk
            .lock()
            .expect("wal device")
            .set_counters(counters);
    }
}

/// The device slot inside a [`Wal`]: the raw device, or the same device
/// behind the double-buffered writer pipeline.
#[derive(Debug)]
enum WalDisk<D: WalDevice> {
    Direct(D),
    Piped(DoubleBuffered<D>),
    /// Transient placeholder while [`Wal::enable_pipeline`] swaps the
    /// device into the pipeline; never observable.
    Swapping,
}

impl<D: WalDevice> WalDevice for WalDisk<D> {
    fn block_size(&self) -> usize {
        match self {
            WalDisk::Direct(d) => d.block_size(),
            WalDisk::Piped(p) => p.block_size(),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }

    fn num_blocks(&self) -> u32 {
        match self {
            WalDisk::Direct(d) => d.num_blocks(),
            WalDisk::Piped(p) => p.num_blocks(),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        match self {
            WalDisk::Direct(d) => d.allocate(),
            WalDisk::Piped(p) => p.allocate(),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        match self {
            WalDisk::Direct(d) => d.write_block(id, data),
            WalDisk::Piped(p) => p.write_block(id, data),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        match self {
            WalDisk::Direct(d) => d.read_block_partial(id),
            WalDisk::Piped(p) => p.read_block_partial(id),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        match self {
            WalDisk::Direct(d) => d.sync(),
            WalDisk::Piped(p) => p.sync(),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }

    fn set_counters(&mut self, counters: OpCounters) {
        match self {
            WalDisk::Direct(d) => d.set_counters(counters),
            WalDisk::Piped(p) => p.set_counters(counters),
            WalDisk::Swapping => unreachable!("wal device mid-swap"),
        }
    }
}

const TAG: u8 = 0xA5;
/// Batch frames: same header layout as [`TAG`] frames (`tag ‖ crc ‖
/// first_seq ‖ nonce ‖ blen`) but the sealed body is a *group* of
/// records — `count(4) ‖ (op ‖ key ‖ vlen ‖ value)*` — sealed as one
/// Speck-CTR pass under one nonce and checked by one CRC. A batch frame
/// consumes `count` consecutive sequence numbers starting at the header's
/// seq. Emitted only by [`Wal::set_seal_batch`] commits staging ≥ 2
/// records; replay accepts both framings, so old logs keep replaying and
/// new logs keep the old single-record grammar for singleton commits.
const BATCH_TAG: u8 = 0xB5;
/// Transaction-commit frames: byte-for-byte the [`BATCH_TAG`] layout —
/// one sealed `count(4) ‖ (op ‖ key ‖ vlen ‖ value)*` body, one nonce,
/// one CRC, `count` consecutive seqs — under a distinct tag, so the
/// grouping is *semantic*: these records are one multi-key transaction
/// and must stay one frame wherever the stream is rewritten (a fuzzy
/// checkpoint's cut re-seals them together rather than flattening them
/// like a physical group-commit batch). Replay inherits the batch
/// frame's all-or-nothing torn-tail rule, which is exactly the txn
/// atomicity guarantee. Emitted by [`Wal::append_txn`] only for ≥ 2
/// records; single-key transactions keep the legacy framing, so
/// autocommit streams stay byte-identical to pre-transaction logs.
const TXN_TAG: u8 = 0xC5;
/// `tag ‖ crc ‖ seq ‖ nonce ‖ blen`.
const HEADER_LEN: usize = 1 + 4 + 8 + 8 + 4;
/// `op ‖ key` inside the sealed body.
const BODY_MIN: usize = 1 + 8;
/// `op ‖ key ‖ vlen` heading each record inside a sealed batch body.
const BATCH_ENTRY_HEADER: usize = 1 + 8 + 4;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
/// Internal sentinel proving the opener holds the right key (record 1).
const OP_KEYCHECK: u8 = 3;
const KEYCHECK_MAGIC: &[u8; 16] = b"SKSWAL-KEYCHECK1";

/// A logged operation, as recovered by replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    Insert { key: u64, value: Vec<u8> },
    Delete { key: u64 },
}

/// One recovered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
}

/// One frame's worth of records from a checkpoint tail scan
/// ([`Wal::records_since`]). `txn` groups were sealed as one atomic
/// transaction frame and must be re-sealed as one when the cut rewrites
/// the tail; the rest may be re-framed freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TailGroup {
    pub txn: bool,
    pub records: Vec<WalRecord>,
}

/// What replay found in an existing log.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    pub records: Vec<WalRecord>,
    /// A record prefix failed its checksum (interrupted write): the valid
    /// prefix was kept, the rest scrubbed.
    pub torn_tail: bool,
    /// Bytes discarded past the last valid record.
    pub bytes_discarded: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed for the per-record nonce sequence: time, pid and a stack address
/// mixed together, so two log lifetimes (or two processes) draw from
/// disjoint 64-bit regions with overwhelming probability.
fn nonce_seed() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let addr = &t as *const _ as u64;
    splitmix64(t ^ addr.rotate_left(32) ^ u64::from(std::process::id()))
}

/// One record staged for batch sealing. The plaintext value is wiped
/// when the entry drops (after the batch body is sealed), so the staging
/// buffer can never leak record bytes through freed heap memory — the
/// same discipline the decoded-record cache follows.
#[derive(Debug)]
struct StagedOp {
    op: u8,
    key: u64,
    value: Vec<u8>,
}

impl Drop for StagedOp {
    fn drop(&mut self) {
        for b in self.value.iter_mut() {
            // Volatile so the wipe of soon-to-be-freed memory is not elided.
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

/// Append/commit/replay handle over one log file. Generic over the
/// [`WalDevice`] so crash probes can interpose a fault-injecting store;
/// the default parameter keeps plain `Wal` meaning the production
/// [`FileDisk`]-backed log.
#[derive(Debug)]
pub struct Wal<D: WalDevice = FileDisk> {
    disk: WalDisk<D>,
    block_size: usize,
    /// In-memory image of the block currently being filled.
    tail: Vec<u8>,
    tail_used: usize,
    /// Block the tail occupies; `None` until the first byte lands.
    tail_id: Option<BlockId>,
    /// Next block the stream will move into once the tail fills.
    next_block: u32,
    next_seq: u64,
    nonce_state: u64,
    policy: SyncPolicy,
    pending_commits: u32,
    tail_dirty: bool,
    /// Set when an append-path I/O error leaves the stream in an unknown
    /// state; every later operation refuses until the log is reopened.
    poisoned: bool,
    cipher: Speck64,
    counters: OpCounters,
    /// When on, appends stage records and `commit` seals the whole group
    /// as one batch frame (one CTR pass + one CRC per commit).
    seal_batch: bool,
    /// Records staged since the last commit boundary. Values are wiped on
    /// drop; the buffer never reaches the medium unsealed.
    staged: Vec<StagedOp>,
    /// Sequence number of `staged[0]` (batch frames carry the first seq).
    staged_first_seq: u64,
    /// When on (and the device is pipelined), [`Wal::commit_pipelined`]
    /// submits policy-mandated fsyncs to the writer thread and returns a
    /// ticket instead of paying the fsync inline.
    overlap: bool,
}

impl Wal {
    /// Creates a fresh, empty log (truncating any existing file), sealed
    /// under `wal_key`, and durably writes the key-check sentinel.
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<Self, EngineError> {
        let disk = FileDisk::create_with_counters(path, block_size, counters.clone())?;
        Wal::create_on_device(disk, block_size, wal_key, policy, counters)
    }

    /// Opens an existing log: verifies the key-check sentinel (failing
    /// closed, without touching the data, when the key is wrong), replays
    /// every intact record, scrubs any torn tail, and positions the
    /// handle for further appends.
    pub fn open<P: AsRef<Path>>(
        path: P,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<(Self, WalReplay), EngineError> {
        let disk = FileDisk::open_with_counters(path, counters.clone())?;
        Wal::open_on_device(disk, wal_key, policy, counters)
    }
}

impl Wal<EngineWalDisk> {
    /// [`Wal::create`] on the engine device, wrapping the disk in a
    /// [`FailStore`] when a fault plan is supplied.
    pub fn create_engine<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
        fault: Option<&sks_storage::FailPlan>,
    ) -> Result<Self, EngineError> {
        let disk = FileDisk::create_with_counters(path, block_size, counters.clone())?;
        Wal::create_on_device(
            EngineWalDisk::wrap(disk, fault),
            block_size,
            wal_key,
            policy,
            counters,
        )
    }

    /// [`Wal::open`] on the engine device, wrapping the disk in a
    /// [`FailStore`] when a fault plan is supplied.
    pub fn open_engine<P: AsRef<Path>>(
        path: P,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
        fault: Option<&sks_storage::FailPlan>,
    ) -> Result<(Self, WalReplay), EngineError> {
        let disk = FileDisk::open_with_counters(path, counters.clone())?;
        Wal::open_on_device(EngineWalDisk::wrap(disk, fault), wal_key, policy, counters)
    }
}

impl<D: WalDevice> Wal<D> {
    /// [`Wal::create`] over an already-constructed device (fault probes
    /// wrap a [`FileDisk`] in a [`FailStore`] first).
    pub fn create_on_device(
        disk: D,
        block_size: usize,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<Self, EngineError> {
        let mut wal = Wal {
            disk: WalDisk::Direct(disk),
            block_size,
            tail: vec![0u8; block_size],
            tail_used: 0,
            tail_id: None,
            next_block: 0,
            next_seq: 1,
            nonce_state: nonce_seed(),
            policy,
            pending_commits: 0,
            tail_dirty: false,
            poisoned: false,
            cipher: Speck64::from_u128(wal_key),
            counters,
            seal_batch: false,
            staged: Vec::new(),
            staged_first_seq: 0,
            overlap: false,
        };
        wal.append_keycheck()?;
        Ok(wal)
    }

    /// [`Wal::open`] over an already-constructed device.
    pub fn open_on_device(
        disk: D,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<(Self, WalReplay), EngineError> {
        let block_size = disk.block_size();
        let num_blocks = disk.num_blocks();
        let cipher = Speck64::from_u128(wal_key);

        // Stream the device block by block: records are parsed (and their
        // sealed bodies decrypted) incrementally, so peak memory is the
        // recovered records plus one compaction window — not a second
        // whole-log ciphertext copy. A physically truncated final region
        // (torn file) reads as zeros.
        let mut replay = WalReplay::default();
        let mut keycheck_seen = false;
        let mut expected_seq = 1u64;
        let mut buf: Vec<u8> = Vec::new();
        let mut start = 0usize; // parse cursor within `buf`
        let mut base_abs = 0usize; // absolute stream offset of `buf[0]`
        let mut real_end = 0usize; // absolute offset past the last non-zero byte
        let mut parsing = true;
        for b in 0..num_blocks {
            let (block, _have) = disk.read_block_partial(BlockId(b))?;
            if let Some(i) = block.iter().rposition(|&x| x != 0) {
                real_end = b as usize * block_size + i + 1;
            }
            if !parsing {
                continue; // only tracking real_end past the parse stop
            }
            buf.extend_from_slice(&block);
            loop {
                match parse_frame(&buf[start..], expected_seq) {
                    Frame::Complete { nonce, len, kind } => {
                        let body = ctr_xor(&cipher, nonce, &buf[start + HEADER_LEN..start + len]);
                        if kind.grouped() {
                            if expected_seq == 1 {
                                // The sentinel is always a legacy frame; a
                                // batch here means a forged or damaged
                                // stream start. Refuse before anything
                                // destructive, like the wrong-key path.
                                return Err(EngineError::Config(
                                    "wal stream does not begin with the key-check sentinel".into(),
                                ));
                            }
                            let Some(entries) = decode_batch(&body) else {
                                parsing = false; // damaged batch body: torn
                                break;
                            };
                            let n = entries.len() as u64;
                            for (i, (op, key, value)) in entries.into_iter().enumerate() {
                                let op = match op {
                                    OP_INSERT => WalOp::Insert { key, value },
                                    _ => WalOp::Delete { key },
                                };
                                replay.records.push(WalRecord {
                                    seq: expected_seq + i as u64,
                                    op,
                                });
                            }
                            start += len;
                            expected_seq += n;
                            continue;
                        }
                        if expected_seq == 1 {
                            // The sentinel: wrong decryption means wrong
                            // key — refuse before anything destructive.
                            if body[0] != OP_KEYCHECK || body[BODY_MIN..] != KEYCHECK_MAGIC[..] {
                                return Err(EngineError::Config(
                                    "wal key mismatch: the log was sealed under a different \
                                     tree/data key configuration"
                                        .into(),
                                ));
                            }
                            keycheck_seen = true;
                        } else {
                            let key =
                                u64::from_be_bytes(body[1..9].try_into().expect("fixed width"));
                            let op = match body[0] {
                                OP_INSERT => WalOp::Insert {
                                    key,
                                    value: body[BODY_MIN..].to_vec(),
                                },
                                OP_DELETE => WalOp::Delete { key },
                                _ => {
                                    parsing = false; // damaged body: torn
                                    break;
                                }
                            };
                            replay.records.push(WalRecord {
                                seq: expected_seq,
                                op,
                            });
                        }
                        start += len;
                        expected_seq += 1;
                    }
                    Frame::NeedMore => break, // feed the next block
                    Frame::End => {
                        parsing = false;
                        break;
                    }
                }
            }
            // Compact the window so long logs don't accumulate.
            if start > 4 * block_size {
                buf.drain(..start);
                base_abs += start;
                start = 0;
            }
        }
        let pos = base_abs + start;
        replay.torn_tail = real_end > pos;
        replay.bytes_discarded = real_end.saturating_sub(pos) as u64;
        counters.bump_by(|c| &c.wal_replayed, replay.records.len() as u64);
        drop(buf);

        let mut wal = Wal {
            disk: WalDisk::Direct(disk),
            block_size,
            tail: vec![0u8; block_size],
            tail_used: pos % block_size,
            tail_id: None,
            next_block: (pos / block_size) as u32 + u32::from(!pos.is_multiple_of(block_size)),
            next_seq: expected_seq,
            nonce_state: nonce_seed(),
            policy,
            pending_commits: 0,
            tail_dirty: false,
            poisoned: false,
            cipher,
            counters,
            seal_batch: false,
            staged: Vec::new(),
            staged_first_seq: 0,
            overlap: false,
        };
        if wal.tail_used > 0 {
            let tail_block = BlockId((pos / block_size) as u32);
            let (block, _have) = wal.disk.read_block_partial(tail_block)?;
            wal.tail[..wal.tail_used].copy_from_slice(&block[..wal.tail_used]);
            wal.tail_id = Some(tail_block);
        }
        if replay.torn_tail || replay.bytes_discarded > 0 {
            wal.scrub_after(pos)?;
            // Flight-recorder breadcrumb: where the valid stream ended and
            // how many trailing bytes recovery threw away.
            wal.counters.obs().note(
                EventKind::TornTailScrub,
                NO_PARTITION,
                pos as u64,
                replay.bytes_discarded,
                0,
            );
        }
        if !keycheck_seen {
            // Only reachable when the log start itself was destroyed (or
            // the file is brand-new empty): restore the sentinel so the
            // wrong-key guard holds for the next open.
            debug_assert_eq!(pos, 0, "keycheck can only be missing at stream start");
            wal.append_keycheck()?;
        }
        Ok((wal, replay))
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes the logical stream currently occupies.
    pub fn len_bytes(&self) -> u64 {
        match self.tail_id {
            Some(id) => id.0 as u64 * self.block_size as u64 + self.tail_used as u64,
            None => self.next_block as u64 * self.block_size as u64,
        }
    }

    /// Whether an earlier append-path failure fail-stopped this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Turns batch sealing on or off. With it on, appends stage records
    /// in memory and every [`Wal::commit`] seals the staged group as one
    /// CTR body + CRC (one frame per commit instead of one per record);
    /// the logical `wal_appends`/`wal_bytes` counters keep charging per
    /// record, byte-identical to the unbatched path. Only affects future
    /// appends — must be toggled at a commit boundary.
    pub fn set_seal_batch(&mut self, on: bool) {
        debug_assert!(
            self.staged.is_empty(),
            "seal_batch toggled mid-commit with staged records"
        );
        self.seal_batch = on;
    }

    /// Routes the device through the double-buffered writer pipeline:
    /// block writes are handed to a small writer thread through two swap
    /// buffers, so sealing the next batch overlaps the previous batch's
    /// device write and fsync. Durability barriers are unchanged —
    /// `sync` drains the pipe before syncing the device.
    pub fn enable_pipeline(&mut self)
    where
        D: Send + 'static,
    {
        if matches!(self.disk, WalDisk::Piped(_)) {
            return;
        }
        match std::mem::replace(&mut self.disk, WalDisk::Swapping) {
            WalDisk::Direct(d) => {
                self.disk = WalDisk::Piped(DoubleBuffered::new(d, self.counters.clone()));
            }
            other => self.disk = other,
        }
    }

    /// Turns fsync overlap on or off. With it on and the writer pipeline
    /// enabled, [`Wal::commit_pipelined`] hands policy-mandated fsyncs to
    /// the writer thread and returns a [`SyncTicket`] instead of paying
    /// the fsync inline, so the next commit group can seal while the
    /// previous group's fsync is in flight. [`Wal::commit`] is unaffected
    /// and stays fully synchronous.
    pub fn set_overlap(&mut self, on: bool) {
        self.overlap = on;
    }

    /// Re-points counter accounting at a different shared set (used by
    /// checkpointing, which writes its snapshot against detached counters
    /// so internal rewrites don't masquerade as client traffic, then
    /// adopts the engine's counters for subsequent appends).
    pub(crate) fn adopt_counters(&mut self, counters: OpCounters) {
        self.disk.set_counters(counters.clone());
        self.counters = counters;
    }

    pub fn append_insert(&mut self, key: u64, value: &[u8]) -> Result<u64, EngineError> {
        self.append(OP_INSERT, key, value, true)
    }

    /// Re-reads the log from byte `from_offset` — which must be the
    /// frame boundary where record `from_seq` begins (a fuzzy
    /// checkpoint's epoch mark, captured as `(next_seq, len_bytes)`
    /// under the log lock) — and returns every client record from it
    /// onward, in order, grouped by frame: the *tail* the checkpoint
    /// carries into the fresh log it cuts over to. The scan is O(tail),
    /// not O(log). Legacy and batch frames come back as `txn: false`
    /// groups (a batch's grouping is physical — the cut may flatten it);
    /// [`TXN_TAG`] frames come back as `txn: true` groups the cut must
    /// re-seal as one frame, so a fuzzy checkpoint can never split a
    /// multi-key transaction across the rewrite. The stream is
    /// self-written and framed, so no torn-tail handling applies here
    /// (the frame grammar below is [`Wal::open`]'s — keep the two in
    /// sync); the in-memory tail block is written out first so the scan
    /// sees everything appended so far. Reads run against detached
    /// counters: checkpoint bookkeeping is not client traffic.
    pub(crate) fn records_since(
        &mut self,
        from_seq: u64,
        from_offset: u64,
    ) -> Result<Vec<TailGroup>, EngineError> {
        self.check_poison()?;
        self.seal_staged()?;
        if self.tail_dirty {
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
        }
        let block_size = self.block_size;
        let first_block = (from_offset / block_size as u64) as u32;
        let mut out: Vec<TailGroup> = Vec::new();
        let mut expected_seq = from_seq;
        let mut buf: Vec<u8> = Vec::new();
        let mut start = (from_offset % block_size as u64) as usize;
        self.disk.set_counters(OpCounters::new());
        let mut scan = || -> Result<(), EngineError> {
            'blocks: for b in first_block..self.disk.num_blocks() {
                let (block, _have) = self.disk.read_block_partial(BlockId(b))?;
                buf.extend_from_slice(&block);
                loop {
                    match parse_frame(&buf[start..], expected_seq) {
                        Frame::Complete { nonce, len, kind } => {
                            let body =
                                ctr_xor(&self.cipher, nonce, &buf[start + HEADER_LEN..start + len]);
                            if kind.grouped() {
                                let Some(entries) = decode_batch(&body) else {
                                    break 'blocks; // self-written: unreachable
                                };
                                let n = entries.len() as u64;
                                let records = entries
                                    .into_iter()
                                    .enumerate()
                                    .map(|(i, (op, key, value))| {
                                        let op = match op {
                                            OP_INSERT => WalOp::Insert { key, value },
                                            _ => WalOp::Delete { key },
                                        };
                                        WalRecord {
                                            seq: expected_seq + i as u64,
                                            op,
                                        }
                                    })
                                    .collect();
                                out.push(TailGroup {
                                    txn: kind == FrameKind::Txn,
                                    records,
                                });
                                start += len;
                                expected_seq += n;
                                continue;
                            }
                            let key =
                                u64::from_be_bytes(body[1..9].try_into().expect("fixed width"));
                            let op = match body[0] {
                                OP_INSERT => Some(WalOp::Insert {
                                    key,
                                    value: body[BODY_MIN..].to_vec(),
                                }),
                                OP_DELETE => Some(WalOp::Delete { key }),
                                _ => None, // the key-check sentinel is not client traffic
                            };
                            if let Some(op) = op {
                                out.push(TailGroup {
                                    txn: false,
                                    records: vec![WalRecord {
                                        seq: expected_seq,
                                        op,
                                    }],
                                });
                            }
                            start += len;
                            expected_seq += 1;
                        }
                        Frame::NeedMore => break,
                        Frame::End => break 'blocks,
                    }
                }
                if start > 4 * block_size {
                    buf.drain(..start);
                    start = 0;
                }
            }
            Ok(())
        };
        let result = scan();
        self.disk.set_counters(self.counters.clone());
        result?;
        Ok(out)
    }

    pub fn append_delete(&mut self, key: u64) -> Result<u64, EngineError> {
        self.append(OP_DELETE, key, &[], true)
    }

    /// Appends a multi-key transaction's writes as one atomic commit
    /// frame (`TXN_TAG`): one sealed body, one CRC, `ops.len()`
    /// consecutive seqs — replay recovers all of it or none of it.
    /// Requires ≥ 2 ops (single-key transactions take the legacy framing
    /// so autocommit streams stay byte-identical). The logical
    /// `wal_appends`/`wal_bytes` charge is per record with each record's
    /// own frame cost, exactly as if the ops had been appended
    /// individually — transactional framing cannot move the paper's
    /// counters; only the physical `wal_txn_frames` telemetry records
    /// the grouping. Independent of the batch-sealing knob: any staged
    /// group-commit records are sealed first so frames stay in seq
    /// order. Returns the first seq of the frame.
    pub fn append_txn(&mut self, ops: &[WalOp]) -> Result<u64, EngineError> {
        self.check_poison()?;
        debug_assert!(ops.len() >= 2, "single-op txns use the legacy framing");
        self.seal_staged()?;
        let timer = self.counters.obs().start();
        let first_seq = self.next_seq;
        let staged: Vec<StagedOp> = ops
            .iter()
            .map(|op| match op {
                WalOp::Insert { key, value } => StagedOp {
                    op: OP_INSERT,
                    key: *key,
                    value: value.clone(),
                },
                WalOp::Delete { key } => StagedOp {
                    op: OP_DELETE,
                    key: *key,
                    value: Vec::new(),
                },
            })
            .collect();
        for s in &staged {
            let frame_len = (HEADER_LEN + BODY_MIN + s.value.len()) as u64;
            self.counters.bump(|c| &c.wal_appends);
            self.counters.bump_by(|c| &c.wal_bytes, frame_len);
        }
        self.counters.bump(|c| &c.wal_txn_frames);
        let nonce = self.next_nonce();
        let rec = build_group_frame(TXN_TAG, &self.cipher, first_seq, nonce, &staged);
        drop(staged); // wipes the cloned plaintext values
        if let Err(e) = self.append_bytes(&rec) {
            self.poisoned = true;
            return Err(e);
        }
        self.next_seq += ops.len() as u64;
        self.counters.obs().stage(Stage::WalAppend, timer);
        Ok(first_seq)
    }

    /// Writes and fsyncs the key-check sentinel (not client traffic: no
    /// append counters).
    fn append_keycheck(&mut self) -> Result<(), EngineError> {
        debug_assert_eq!(self.next_seq, 1);
        self.append(OP_KEYCHECK, 0, KEYCHECK_MAGIC, false)?;
        self.flush()
    }

    fn append(&mut self, op: u8, key: u64, value: &[u8], count: bool) -> Result<u64, EngineError> {
        self.check_poison()?;
        let timer = self.counters.obs().start();
        let seq = self.next_seq;

        // The logical charge is per record in both modes and covers the
        // record's own frame cost, so batching cannot move the counters.
        let frame_len = (HEADER_LEN + BODY_MIN + value.len()) as u64;
        if count {
            self.counters.bump(|c| &c.wal_appends);
            self.counters.bump_by(|c| &c.wal_bytes, frame_len);
        }

        if self.seal_batch && op != OP_KEYCHECK {
            // Stage: the seal (and any device I/O) happens at the commit
            // boundary, one CTR pass for the whole group.
            if self.staged.is_empty() {
                self.staged_first_seq = seq;
            }
            self.staged.push(StagedOp {
                op,
                key,
                value: value.to_vec(),
            });
            self.next_seq += 1;
            self.counters.obs().stage(Stage::WalAppend, timer);
            return Ok(seq);
        }

        let nonce = self.next_nonce();
        let rec = build_record_frame(&self.cipher, seq, nonce, op, key, value);
        if let Err(e) = self.append_bytes(&rec) {
            // A half-written record may sit in the stream; nothing after
            // it could be replayed, so refuse all further use.
            self.poisoned = true;
            return Err(e);
        }
        self.next_seq += 1;
        self.counters.obs().stage(Stage::WalAppend, timer);
        Ok(seq)
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce_state = self.nonce_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.nonce_state)
    }

    /// Seals everything staged since the last commit boundary into the
    /// stream: singleton groups keep the legacy per-record framing (new
    /// logs stay byte-compatible with old readers for unbatched traffic),
    /// larger groups become one batch frame — one nonce, one CTR pass,
    /// one CRC for the whole group.
    fn seal_staged(&mut self) -> Result<(), EngineError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        let timer = self.counters.obs().start();
        let first_seq = self.staged_first_seq;
        let staged = std::mem::take(&mut self.staged);
        let nonce = self.next_nonce();
        let rec = if staged.len() == 1 {
            build_record_frame(
                &self.cipher,
                first_seq,
                nonce,
                staged[0].op,
                staged[0].key,
                &staged[0].value,
            )
        } else {
            self.counters.bump(|c| &c.wal_sealed_batches);
            build_group_frame(BATCH_TAG, &self.cipher, first_seq, nonce, &staged)
        };
        drop(staged); // wipes the staged plaintext values
        if let Err(e) = self.append_bytes(&rec) {
            self.poisoned = true;
            return Err(e);
        }
        self.counters.obs().stage(Stage::SealBatch, timer);
        Ok(())
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut off = 0;
        while off < bytes.len() {
            if self.tail_id.is_none() {
                let id = BlockId(self.next_block);
                self.ensure_allocated(id)?;
                self.tail_id = Some(id);
                self.next_block += 1;
                self.tail.fill(0);
                self.tail_used = 0;
            }
            let n = (self.block_size - self.tail_used).min(bytes.len() - off);
            self.tail[self.tail_used..self.tail_used + n].copy_from_slice(&bytes[off..off + n]);
            self.tail_used += n;
            off += n;
            self.tail_dirty = true;
            if self.tail_used == self.block_size {
                self.write_tail()?;
                self.tail_id = None;
            }
        }
        Ok(())
    }

    /// Makes everything appended so far visible to the device, then
    /// applies the [`SyncPolicy`]: returns `true` when this commit paid a
    /// physical fsync.
    pub fn commit(&mut self) -> Result<bool, EngineError> {
        self.check_poison()?;
        self.seal_staged()?;
        if self.tail_dirty {
            let timer = self.counters.obs().start();
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
            self.counters.obs().stage(Stage::WalAppend, timer);
        }
        self.pending_commits += 1;
        if self.policy.should_sync(self.pending_commits) {
            let amortised = self.pending_commits;
            self.force_sync()?;
            self.counters
                .obs()
                .note(EventKind::GroupCommit, NO_PARTITION, amortised as u64, 0, 0);
            return Ok(true);
        }
        Ok(false)
    }

    /// [`Wal::commit`], except that when this commit's policy point
    /// demands an fsync, the device is pipelined, and overlap is enabled
    /// ([`Wal::set_overlap`]), the fsync is enqueued on the writer thread
    /// behind the group's sealed blocks and its [`SyncTicket`] returned
    /// instead of being waited for here. The durability barrier moves
    /// out of this handle's lock scope — it does not weaken: the commit
    /// is durable only once the ticket's `wait` returns `Ok`, and the
    /// caller must not acknowledge it before then. Meanwhile another
    /// thread can take this handle and seal group N+1 while group N's
    /// fsync runs. Returns `Ok(None)` when no fsync was due, or when one
    /// was due and was paid inline (the non-overlapped path).
    pub fn commit_pipelined(&mut self) -> Result<Option<SyncTicket>, EngineError> {
        self.check_poison()?;
        self.seal_staged()?;
        if self.tail_dirty {
            let timer = self.counters.obs().start();
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
            self.counters.obs().stage(Stage::WalAppend, timer);
        }
        self.pending_commits += 1;
        if !self.policy.should_sync(self.pending_commits) {
            return Ok(None);
        }
        let amortised = self.pending_commits;
        if self.overlap {
            if let WalDisk::Piped(p) = &mut self.disk {
                self.counters.bump(|c| &c.wal_fsyncs);
                let ticket = match p.submit_sync() {
                    Ok(t) => t,
                    Err(e) => {
                        // Same fail-stop as a failed inline fsync: the
                        // durability of pending commits is unknowable.
                        self.poisoned = true;
                        return Err(e.into());
                    }
                };
                self.counters.obs().note(
                    EventKind::GroupCommit,
                    NO_PARTITION,
                    amortised as u64,
                    0,
                    0,
                );
                self.pending_commits = 0;
                return Ok(Some(ticket));
            }
        }
        self.force_sync()?;
        self.counters
            .obs()
            .note(EventKind::GroupCommit, NO_PARTITION, amortised as u64, 0, 0);
        Ok(None)
    }

    /// [`Wal::commit_pipelined`] with the sync policy overridden to *pay
    /// the durability barrier now*: multi-partition transaction commits
    /// use this so their one atomic frame is durable before any tree
    /// effect becomes visible — under a lazy [`SyncPolicy`] a fuzzy
    /// checkpoint could otherwise flush one partition's post-apply pages
    /// while a crash loses the log frame that also touched another
    /// partition, splitting the transaction. Overlap still applies: on a
    /// pipelined device the fsync is enqueued and its ticket returned,
    /// so the barrier is paid outside the WAL lock.
    pub fn commit_durable(&mut self) -> Result<Option<SyncTicket>, EngineError> {
        self.check_poison()?;
        self.seal_staged()?;
        if self.tail_dirty {
            let timer = self.counters.obs().start();
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
            self.counters.obs().stage(Stage::WalAppend, timer);
        }
        self.pending_commits += 1;
        let amortised = self.pending_commits;
        if self.overlap {
            if let WalDisk::Piped(p) = &mut self.disk {
                self.counters.bump(|c| &c.wal_fsyncs);
                let ticket = match p.submit_sync() {
                    Ok(t) => t,
                    Err(e) => {
                        self.poisoned = true;
                        return Err(e.into());
                    }
                };
                self.counters.obs().note(
                    EventKind::GroupCommit,
                    NO_PARTITION,
                    amortised as u64,
                    0,
                    0,
                );
                self.pending_commits = 0;
                return Ok(Some(ticket));
            }
        }
        self.force_sync()?;
        self.counters
            .obs()
            .note(EventKind::GroupCommit, NO_PARTITION, amortised as u64, 0, 0);
        Ok(None)
    }

    /// Unconditional write-out + fsync (checkpoint/shutdown path).
    pub fn flush(&mut self) -> Result<(), EngineError> {
        self.check_poison()?;
        self.seal_staged()?;
        if self.tail_dirty {
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
        }
        self.force_sync()
    }

    fn check_poison(&self) -> Result<(), EngineError> {
        if self.poisoned {
            return Err(EngineError::WalPoisoned);
        }
        Ok(())
    }

    fn force_sync(&mut self) -> Result<(), EngineError> {
        self.counters.bump(|c| &c.wal_fsyncs);
        let timer = self.counters.obs().start();
        if let Err(e) = self.disk.sync() {
            // An fsync failure may have silently dropped dirty pages
            // (Linux clears the error flag), so the durability of every
            // unsynced commit is now unknowable from this handle: fail
            // stop rather than ack future commits over a silent hole.
            self.poisoned = true;
            return Err(e.into());
        }
        self.counters.obs().stage(Stage::WalFsync, timer);
        self.pending_commits = 0;
        Ok(())
    }

    fn write_tail(&mut self) -> Result<(), EngineError> {
        let id = self.tail_id.expect("dirty tail always has a block");
        self.disk.write_block(id, &self.tail)?;
        self.tail_dirty = false;
        Ok(())
    }

    fn ensure_allocated(&mut self, id: BlockId) -> Result<(), EngineError> {
        while self.disk.num_blocks() <= id.0 {
            let got = self.disk.allocate()?;
            debug_assert!(got.0 < self.disk.num_blocks());
        }
        Ok(())
    }

    /// Zeroes every byte of the stream from `pos` onward (torn-tail
    /// scrub), so stale bytes can never be re-parsed as records.
    fn scrub_after(&mut self, pos: usize) -> Result<(), EngineError> {
        let first_block = (pos / self.block_size) as u32;
        let zero = vec![0u8; self.block_size];
        for b in first_block..self.disk.num_blocks() {
            if b == first_block && !pos.is_multiple_of(self.block_size) {
                // Preserve the valid prefix inside the boundary block.
                let mut buf = zero.clone();
                buf[..self.tail_used].copy_from_slice(&self.tail[..self.tail_used]);
                self.disk.write_block(BlockId(b), &buf)?;
            } else {
                self.disk.write_block(BlockId(b), &zero)?;
            }
        }
        self.disk.sync()?;
        Ok(())
    }

    #[cfg(test)]
    fn poison_for_test(&mut self) {
        self.poisoned = true;
    }
}

/// How a CRC-valid frame groups its records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    /// Legacy single-record frame ([`TAG`]).
    Record,
    /// Physical group-commit batch ([`BATCH_TAG`]): grouped for I/O, free
    /// to be flattened when the stream is rewritten.
    Batch,
    /// Multi-key transaction commit ([`TXN_TAG`]): grouped semantically,
    /// must stay one frame across rewrites.
    Txn,
}

impl FrameKind {
    /// Whether the sealed body is the grouped `count ‖ entries*` grammar.
    fn grouped(self) -> bool {
        self != FrameKind::Record
    }
}

enum Frame {
    /// A CRC-valid frame with the expected sequence number; `len` is the
    /// full record length including the header. Grouped kinds carry a
    /// sealed group of records (see [`BATCH_TAG`], [`TXN_TAG`]) starting
    /// at that seq.
    Complete {
        nonce: u64,
        len: usize,
        kind: FrameKind,
    },
    /// The buffer ends inside this frame; feed more bytes.
    NeedMore,
    /// Clean end of stream, or a frame-level violation (bad tag, bad CRC,
    /// sequence gap) — the caller distinguishes via trailing content.
    End,
}

fn parse_frame(buf: &[u8], expected_seq: u64) -> Frame {
    if buf.is_empty() {
        return Frame::NeedMore;
    }
    if buf[0] == 0 {
        return Frame::End;
    }
    let kind = match buf[0] {
        TAG => FrameKind::Record,
        BATCH_TAG => FrameKind::Batch,
        TXN_TAG => FrameKind::Txn,
        _ => return Frame::End,
    };
    if buf.len() < HEADER_LEN {
        return Frame::NeedMore;
    }
    let crc_stored = u32::from_be_bytes(buf[1..5].try_into().expect("fixed width"));
    let seq = u64::from_be_bytes(buf[5..13].try_into().expect("fixed width"));
    let nonce = u64::from_be_bytes(buf[13..21].try_into().expect("fixed width"));
    let blen = u32::from_be_bytes(buf[21..25].try_into().expect("fixed width")) as usize;
    let body_min = if kind.grouped() {
        4 + 2 * BATCH_ENTRY_HEADER // count + two minimal entries
    } else {
        BODY_MIN
    };
    if blen < body_min || seq != expected_seq {
        return Frame::End;
    }
    let total = HEADER_LEN + blen;
    if buf.len() < total {
        return Frame::NeedMore;
    }
    if crc32(&buf[5..total]) != crc_stored {
        return Frame::End;
    }
    Frame::Complete {
        nonce,
        len: total,
        kind,
    }
}

/// Volatile zero of a plaintext scratch buffer (never elided).
fn wipe(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

fn finish_frame(tag: u8, seq: u64, nonce: u64, sealed: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(HEADER_LEN + sealed.len());
    rec.push(tag);
    rec.extend_from_slice(&[0u8; 4]); // crc placeholder
    rec.extend_from_slice(&seq.to_be_bytes());
    rec.extend_from_slice(&nonce.to_be_bytes());
    rec.extend_from_slice(&(sealed.len() as u32).to_be_bytes());
    rec.extend_from_slice(sealed);
    let crc = crc32(&rec[5..]);
    rec[1..5].copy_from_slice(&crc.to_be_bytes());
    rec
}

/// One legacy single-record frame: `tag ‖ crc ‖ seq ‖ nonce ‖ blen ‖
/// E(op ‖ key ‖ value)`.
fn build_record_frame(
    cipher: &Speck64,
    seq: u64,
    nonce: u64,
    op: u8,
    key: u64,
    value: &[u8],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(BODY_MIN + value.len());
    body.push(op);
    body.extend_from_slice(&key.to_be_bytes());
    body.extend_from_slice(value);
    let sealed = ctr_xor(cipher, nonce, &body);
    wipe(&mut body);
    finish_frame(TAG, seq, nonce, &sealed)
}

/// One grouped frame ([`BATCH_TAG`] or [`TXN_TAG`]) sealing the whole
/// group under a single nonce: `tag ‖ crc ‖ first_seq ‖ nonce ‖ blen ‖
/// E(count ‖ (op ‖ key ‖ vlen ‖ value)*)`.
fn build_group_frame(
    tag: u8,
    cipher: &Speck64,
    first_seq: u64,
    nonce: u64,
    staged: &[StagedOp],
) -> Vec<u8> {
    let body_len: usize = 4 + staged
        .iter()
        .map(|s| BATCH_ENTRY_HEADER + s.value.len())
        .sum::<usize>();
    let mut body = Vec::with_capacity(body_len);
    body.extend_from_slice(&(staged.len() as u32).to_be_bytes());
    for s in staged {
        body.push(s.op);
        body.extend_from_slice(&s.key.to_be_bytes());
        body.extend_from_slice(&(s.value.len() as u32).to_be_bytes());
        body.extend_from_slice(&s.value);
    }
    let sealed = ctr_xor(cipher, nonce, &body);
    wipe(&mut body);
    finish_frame(tag, first_seq, nonce, &sealed)
}

/// Decodes a decrypted batch body into `(op, key, value)` entries;
/// `None` on any grammar violation (the caller treats it as a torn
/// tail, exactly like a frame-level violation).
fn decode_batch(body: &[u8]) -> Option<Vec<(u8, u64, Vec<u8>)>> {
    if body.len() < 4 {
        return None;
    }
    let count = u32::from_be_bytes(body[0..4].try_into().expect("fixed width")) as usize;
    if count < 2 {
        return None; // the writer never emits smaller groups as batches
    }
    // The count word is corruption-controlled (a CRC-colliding body gets
    // this far), so it must never size an allocation on its own: a body of
    // `len` bytes can hold at most `len / BATCH_ENTRY_HEADER` entries.
    if count > body.len() / BATCH_ENTRY_HEADER {
        return None;
    }
    let mut off = 4;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if body.len().checked_sub(off)? < BATCH_ENTRY_HEADER {
            return None;
        }
        let op = body[off];
        if op != OP_INSERT && op != OP_DELETE {
            return None;
        }
        let key = u64::from_be_bytes(body[off + 1..off + 9].try_into().expect("fixed width"));
        let vlen =
            u32::from_be_bytes(body[off + 9..off + 13].try_into().expect("fixed width")) as usize;
        off += BATCH_ENTRY_HEADER;
        if body.len().checked_sub(off)? < vlen {
            return None;
        }
        out.push((op, key, body[off..off + vlen].to_vec()));
        off = off.checked_add(vlen)?;
    }
    if off != body.len() {
        return None; // trailing garbage inside a CRC-valid frame: torn
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u128 = 0x00AA_BB11_22CC_DD33_44EE_FF55_6677_8899;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sks_wal_{}_{}", std::process::id(), name));
        p
    }

    fn reopen(path: &std::path::Path) -> (Wal, WalReplay) {
        Wal::open(path, KEY, SyncPolicy::Always, OpCounters::new()).unwrap()
    }

    #[test]
    fn append_commit_replay_roundtrip() {
        let path = tmpfile("roundtrip");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..40u64 {
                wal.append_insert(k, format!("value-{k}").as_bytes())
                    .unwrap();
                wal.commit().unwrap();
            }
            wal.append_delete(7).unwrap();
            wal.commit().unwrap();
        }
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 41);
        assert_eq!(replay.records[0].seq, 2, "seq 1 is the key-check sentinel");
        assert_eq!(
            replay.records[40].op,
            WalOp::Delete { key: 7 },
            "last record is the delete"
        );
        assert_eq!(
            replay.records[12].op,
            WalOp::Insert {
                key: 12,
                value: b"value-12".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_straddle_blocks() {
        let path = tmpfile("straddle");
        {
            let mut wal =
                Wal::create(&path, 64, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            // 100-byte values force every record across block boundaries.
            for k in 0..10u64 {
                wal.append_insert(k, &[k as u8; 100]).unwrap();
                wal.commit().unwrap();
            }
        }
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 10);
        for (k, rec) in replay.records.iter().enumerate() {
            assert_eq!(
                rec.op,
                WalOp::Insert {
                    key: k as u64,
                    value: vec![k as u8; 100]
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_continue_after_reopen() {
        let path = tmpfile("continue");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            wal.append_insert(1, b"one").unwrap();
            wal.commit().unwrap();
        }
        {
            let (mut wal, replay) = reopen(&path);
            assert_eq!(replay.records.len(), 1);
            assert_eq!(wal.next_seq(), 3, "sentinel + one record consumed 1..=2");
            wal.append_insert(2, b"two").unwrap();
            wal.commit().unwrap();
        }
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_bytes_never_leak_keys_or_values() {
        let path = tmpfile("sealed");
        // Distinctive key values whose big-endian bytes cannot collide
        // with the plaintext seq field or block padding.
        let secret_key = |k: u64| 0xDEAD_BEEF_0000_0000u64 | (k * 3 + 1);
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..32u64 {
                wal.append_insert(secret_key(k), b"EXTREMELY-SECRET-PAYLOAD")
                    .unwrap();
                wal.commit().unwrap();
            }
        }
        let raw = std::fs::read(&path).unwrap();
        assert!(
            !raw.windows(16).any(|w| w == &b"EXTREMELY-SECRET"[..]),
            "record values must be sealed on the medium"
        );
        for k in 0..32u64 {
            let needle = secret_key(k).to_be_bytes();
            let hits = raw.windows(8).filter(|w| *w == needle).count();
            assert_eq!(hits, 0, "plaintext key {k} visible in the log");
        }
        // But replay under the right key recovers everything.
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 32);
        assert_eq!(
            replay.records[5].op,
            WalOp::Insert {
                key: secret_key(5),
                value: b"EXTREMELY-SECRET-PAYLOAD".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn same_payload_twice_yields_distinct_cryptograms() {
        // Per-record nonces: identical plaintext must never produce
        // identical sealed bytes (checkpoint rewrites depend on this).
        let path = tmpfile("nonce_fresh");
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            wal.append_insert(42, b"SAME-PAYLOAD-SAME-KEY").unwrap();
            wal.append_insert(42, b"SAME-PAYLOAD-SAME-KEY").unwrap();
            wal.commit().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        // Find the two sealed bodies: scan for any repeated 21-byte
        // window (body length) outside the zero padding.
        let body_len = BODY_MIN + b"SAME-PAYLOAD-SAME-KEY".len();
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0;
        for w in raw.windows(body_len) {
            if w.iter().any(|&b| b != 0) && !seen.insert(w.to_vec()) {
                repeats += 1;
            }
        }
        assert_eq!(
            repeats, 0,
            "identical plaintexts produced repeated sealed bytes"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_key_fails_closed_without_destroying_the_log() {
        let path = tmpfile("wrong_key");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..8u64 {
                wal.append_insert(k, b"v").unwrap();
                wal.commit().unwrap();
            }
        }
        let err = Wal::open(&path, KEY ^ 1, SyncPolicy::Always, OpCounters::new())
            .map(|_| ())
            .expect_err("wrong key must be rejected");
        assert!(format!("{err}").contains("key mismatch"), "got: {err}");
        // The failed open must not have damaged anything: the right key
        // still recovers every record.
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated_file_recovers_prefix() {
        let path = tmpfile("torn_truncate");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..20u64 {
                wal.append_insert(k, &[0xCD; 50]).unwrap();
                wal.commit().unwrap();
            }
        }
        // Chop the file mid-way through the stream: a hard truncation of
        // the physical medium, cutting the last records in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 300).unwrap();
        drop(f);

        let (_wal, replay) = reopen(&path);
        assert!(replay.torn_tail, "truncation must be detected");
        assert!(
            !replay.records.is_empty() && replay.records.len() < 20,
            "a strict prefix survives, got {}",
            replay.records.len()
        );
        for (k, rec) in replay.records.iter().enumerate() {
            assert_eq!(
                rec.op,
                WalOp::Insert {
                    key: k as u64,
                    value: vec![0xCD; 50]
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_corrupt_bytes_recover_prefix_and_scrub() {
        let path = tmpfile("torn_corrupt");
        let logical_len;
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..8u64 {
                wal.append_insert(k, &[7; 20]).unwrap();
                wal.commit().unwrap();
            }
            logical_len = wal.len_bytes();
        }
        // Flip bytes inside the last record's sealed body: the stream
        // starts after the FileDisk's fixed 8 KiB header, so this lands
        // 10 bytes before the logical end — mid-payload.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(8192 + logical_len - 10)).unwrap();
            f.write_all(&[0xFF; 5]).unwrap();
        }
        let (mut wal, replay) = reopen(&path);
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 7, "first seven records intact");

        // The scrub + reopen leaves a log that keeps working.
        wal.append_insert(99, b"after-recovery").unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail, "scrubbed log is clean again");
        assert_eq!(replay.records.len(), 8);
        assert_eq!(
            replay.records[7].op,
            WalOp::Insert {
                key: 99,
                value: b"after-recovery".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_amortises_fsyncs() {
        let path = tmpfile("group_commit");
        let counters = OpCounters::new();
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::EveryN(8), counters.clone()).unwrap();
            for k in 0..64u64 {
                wal.append_insert(k, b"v").unwrap();
                wal.commit().unwrap();
            }
        }
        let s = counters.snapshot();
        assert_eq!(
            s.wal_appends, 64,
            "the key-check sentinel is not client traffic"
        );
        assert_eq!(
            s.wal_fsyncs,
            8 + 1,
            "64 commits at EveryN(8) = 8 fsyncs, +1 for the durable sentinel"
        );
        // Nothing is lost despite the amortisation (process exit, not
        // power failure).
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_since_returns_the_fuzzy_tail() {
        let path = tmpfile("records_since");
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        for k in 0..10u64 {
            wal.append_insert(k, format!("v{k}").as_bytes()).unwrap();
            wal.commit().unwrap();
        }
        let (mark, mark_offset) = (wal.next_seq(), wal.len_bytes());
        wal.append_insert(100, b"tail-a").unwrap();
        wal.append_delete(3).unwrap();
        // Deliberately no commit: the scan must see the in-memory tail.
        let tail = wal.records_since(mark, mark_offset).unwrap();
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|g| !g.txn && g.records.len() == 1));
        assert_eq!(
            tail[0].records[0].op,
            WalOp::Insert {
                key: 100,
                value: b"tail-a".to_vec()
            }
        );
        assert_eq!(tail[1].records[0].op, WalOp::Delete { key: 3 });
        // From the very beginning: every client record, sentinel excluded.
        assert_eq!(wal.records_since(1, 0).unwrap().len(), 12);
        // An empty tail (mark at the stream end) scans to nothing.
        let (end_seq, end_off) = (wal.next_seq(), wal.len_bytes());
        assert!(wal.records_since(end_seq, end_off).unwrap().is_empty());
        // Appends still work after the scan.
        wal.append_insert(101, b"after").unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 13);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_wal_fail_stops() {
        let path = tmpfile("poison");
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        wal.append_insert(1, b"ok").unwrap();
        wal.commit().unwrap();
        wal.poison_for_test();
        assert!(wal.is_poisoned());
        assert!(matches!(
            wal.append_insert(2, b"no"),
            Err(EngineError::WalPoisoned)
        ));
        assert!(matches!(wal.commit(), Err(EngineError::WalPoisoned)));
        assert!(matches!(wal.flush(), Err(EngineError::WalPoisoned)));
        // Reopen recovers the committed prefix and a fresh, usable handle.
        drop(wal);
        let (mut wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 1);
        wal.append_insert(2, b"yes").unwrap();
        wal.commit().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_group_commit_replays_every_record() {
        let path = tmpfile("batch_roundtrip");
        let counters = OpCounters::new();
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::Always, counters.clone()).unwrap();
            wal.set_seal_batch(true);
            wal.enable_pipeline();
            // Two group commits of five records, one of three.
            for batch in 0..3u64 {
                let n = if batch < 2 { 5 } else { 3 };
                for i in 0..n {
                    let k = batch * 10 + i;
                    wal.append_insert(k, format!("b{batch}-{i}").as_bytes())
                        .unwrap();
                }
                wal.commit().unwrap();
            }
        }
        let s = counters.snapshot();
        assert_eq!(s.wal_appends, 13, "every record charged individually");
        assert_eq!(s.wal_sealed_batches, 3, "one sealed body per group commit");
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 13);
        // Seqs stay dense across batch boundaries (sentinel is seq 1).
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64 + 2);
        }
        assert_eq!(
            replay.records[7].op,
            WalOp::Insert {
                key: 12,
                value: b"b1-2".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn singleton_commits_keep_legacy_framing() {
        let path = tmpfile("batch_singleton");
        let counters = OpCounters::new();
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, counters.clone()).unwrap();
            wal.set_seal_batch(true);
            wal.enable_pipeline();
            for k in 0..4u64 {
                wal.append_insert(k, b"solo").unwrap();
                wal.commit().unwrap();
            }
        }
        assert_eq!(
            counters.snapshot().wal_sealed_batches,
            0,
            "a one-record commit is not a batch"
        );
        // A log of singleton batch-mode commits is readable by a plain
        // (batch-off) reopen: the framings are identical.
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_legacy_and_batch_log_replays() {
        let path = tmpfile("batch_mixed");
        {
            // Legacy era: per-record frames.
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..5u64 {
                wal.append_insert(k, b"legacy").unwrap();
                wal.commit().unwrap();
            }
        }
        {
            // Batch era on the same log.
            let (mut wal, replay) = reopen(&path);
            assert_eq!(replay.records.len(), 5);
            wal.set_seal_batch(true);
            wal.enable_pipeline();
            for k in 5..11u64 {
                wal.append_insert(k, b"batched").unwrap();
            }
            wal.commit().unwrap();
            // And one more legacy-framed record after toggling back off.
            wal.set_seal_batch(false);
            wal.append_insert(11, b"legacy-again").unwrap();
            wal.commit().unwrap();
        }
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 12);
        for (k, rec) in replay.records.iter().enumerate() {
            let value = match k {
                0..=4 => &b"legacy"[..],
                5..=10 => &b"batched"[..],
                _ => &b"legacy-again"[..],
            };
            assert_eq!(
                rec.op,
                WalOp::Insert {
                    key: k as u64,
                    value: value.to_vec()
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_batch_tail_recovers_committed_prefix() {
        let path = tmpfile("batch_torn");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            wal.set_seal_batch(true);
            wal.enable_pipeline();
            for batch in 0..4u64 {
                for i in 0..5 {
                    wal.append_insert(batch * 5 + i, &[0xAB; 40]).unwrap();
                }
                wal.commit().unwrap();
            }
        }
        // Chop the medium mid-way through the last batch's sealed body:
        // the CRC covers the whole group, so the entire torn batch must
        // vanish while every earlier batch survives intact.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 100).unwrap();
        drop(f);

        let (_wal, replay) = reopen(&path);
        assert!(replay.torn_tail, "truncation must be detected");
        assert!(
            !replay.records.is_empty() && replay.records.len() < 20,
            "a strict prefix survives, got {}",
            replay.records.len()
        );
        assert_eq!(
            replay.records.len() % 5,
            0,
            "recovery is all-or-nothing per sealed batch"
        );
        for (k, rec) in replay.records.iter().enumerate() {
            assert_eq!(
                rec.op,
                WalOp::Insert {
                    key: k as u64,
                    value: vec![0xAB; 40]
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_since_spans_batches_and_staged_tail() {
        let path = tmpfile("batch_records_since");
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        wal.set_seal_batch(true);
        wal.enable_pipeline();
        for batch in 0..2u64 {
            for i in 0..4 {
                wal.append_insert(batch * 4 + i, b"pre").unwrap();
            }
            wal.commit().unwrap();
        }
        let (mark, mark_offset) = (wal.next_seq(), wal.len_bytes());
        // One committed batch after the mark, plus a staged (uncommitted)
        // pair the scan must still surface.
        for k in 100..103u64 {
            wal.append_insert(k, b"tail").unwrap();
        }
        wal.commit().unwrap();
        wal.append_insert(200, b"staged").unwrap();
        wal.append_delete(201).unwrap();
        let tail = wal.records_since(mark, mark_offset).unwrap();
        // Two groups — the committed triple and the sealed staged pair —
        // both physical batches the cut is free to flatten.
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|g| !g.txn));
        let flat: Vec<&WalRecord> = tail.iter().flat_map(|g| &g.records).collect();
        assert_eq!(flat.len(), 5);
        assert_eq!(
            flat[0].op,
            WalOp::Insert {
                key: 100,
                value: b"tail".to_vec()
            }
        );
        assert_eq!(flat[4].op, WalOp::Delete { key: 201 });
        // From the start: all 13 client records, sentinel excluded.
        let all: usize = wal
            .records_since(1, 0)
            .unwrap()
            .iter()
            .map(|g| g.records.len())
            .sum();
        assert_eq!(all, 13);
        drop(wal);
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 13);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn txn_frame_roundtrip_and_tail_grouping() {
        let path = tmpfile("txn_roundtrip");
        let counters = OpCounters::new();
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, counters.clone()).unwrap();
        wal.append_insert(1, b"solo").unwrap();
        wal.commit().unwrap();
        let before = counters.snapshot();
        let ops = vec![
            WalOp::Insert {
                key: 10,
                value: b"txn-a".to_vec(),
            },
            WalOp::Delete { key: 1 },
            WalOp::Insert {
                key: 11,
                value: b"txn-b".to_vec(),
            },
        ];
        let first = wal.append_txn(&ops).unwrap();
        wal.commit().unwrap();
        let delta = counters.snapshot().delta(&before);
        // Per-record logical charge, as if appended individually.
        assert_eq!(delta.wal_appends, 3);
        assert_eq!(
            delta.wal_bytes,
            3 * (HEADER_LEN + BODY_MIN) as u64 + (b"txn-a".len() + b"txn-b".len()) as u64
        );
        assert_eq!(delta.wal_txn_frames, 1);
        assert_eq!(delta.wal_sealed_batches, 0);
        // The frame consumed three consecutive seqs.
        assert_eq!(wal.next_seq(), first + 3);

        // The checkpoint tail scan returns the txn as ONE group it must
        // re-seal atomically; the solo record stays a free singleton.
        let groups = wal.records_since(1, 0).unwrap();
        assert_eq!(groups.len(), 2);
        assert!(!groups[0].txn);
        assert!(groups[1].txn);
        assert_eq!(groups[1].records.len(), 3);
        assert_eq!(groups[1].records[0].seq, first);
        drop(wal);

        // Replay recovers every record of the frame, in order.
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.records[1].op, ops[0]);
        assert_eq!(replay.records[2].op, ops[1]);
        assert_eq!(replay.records[3].op, ops[2]);
        assert!(!replay.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_txn_frame_replays_all_or_nothing() {
        // Corrupt one byte inside a committed txn frame: the whole
        // transaction must vanish on replay — never a prefix of it.
        let path = tmpfile("txn_torn");
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        wal.append_insert(1, b"keep").unwrap();
        wal.commit().unwrap();
        let frame_start = wal.len_bytes();
        wal.append_txn(&[
            WalOp::Insert {
                key: 2,
                value: b"half-a".to_vec(),
            },
            WalOp::Insert {
                key: 3,
                value: b"half-b".to_vec(),
            },
        ])
        .unwrap();
        wal.commit().unwrap();
        drop(wal);

        // Flip a byte in the middle of the txn frame's sealed body (the
        // stream starts after the FileDisk's fixed 8 KiB header).
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = 8192 + frame_start as usize + HEADER_LEN + 6;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_wal, replay) = reopen(&path);
        assert!(replay.torn_tail, "the damaged frame is a torn tail");
        assert_eq!(replay.records.len(), 1, "all-or-nothing: none of the txn");
        assert_eq!(replay.records[0].seq, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_mode_preserves_logical_wal_counters() {
        // The same workload, batch off vs batch+pipeline on: every
        // logical WAL counter except the batch tally itself must agree.
        let run = |name: &str, batched: bool| {
            let path = tmpfile(name);
            let counters = OpCounters::new();
            {
                let mut wal =
                    Wal::create(&path, 256, KEY, SyncPolicy::EveryN(4), counters.clone()).unwrap();
                if batched {
                    wal.set_seal_batch(true);
                    wal.enable_pipeline();
                }
                counters.reset();
                for batch in 0..8u64 {
                    for i in 0..4 {
                        wal.append_insert(batch * 4 + i, b"pinned-value").unwrap();
                    }
                    wal.commit().unwrap();
                }
                wal.flush().unwrap();
            }
            std::fs::remove_file(&path).ok();
            counters.snapshot()
        };
        let off = run("pin_off", false);
        let on = run("pin_on", true);
        assert_eq!(off.wal_sealed_batches, 0);
        assert_eq!(on.wal_sealed_batches, 8);
        assert_eq!(on.wal_appends, off.wal_appends);
        assert_eq!(
            on.wal_bytes, off.wal_bytes,
            "logical WAL bytes are charged per record, not per frame"
        );
        assert_eq!(
            on.wal_fsyncs, off.wal_fsyncs,
            "group-commit cadence is untouched by batch sealing"
        );
    }

    #[test]
    fn crc_valid_batch_count_u32_max_fails_closed() {
        // The count word is corruption-controlled even under a valid frame
        // CRC: decode_batch must reject an absurd value before sizing any
        // allocation, instead of reserving count * entry bytes up front.
        let mut raw = vec![0u8; 64];
        raw[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_batch(&raw), None);

        // End to end: a batch frame whose CRC *is* valid over a sealed
        // body claiming u32::MAX entries. Replay must treat it as a torn
        // tail — promptly, with no multi-GB reservation — and leave the
        // log usable for further appends.
        let path = tmpfile("batch_count_max");
        drop(Wal::create(&path, 512, KEY, SyncPolicy::Always, OpCounters::new()).unwrap());

        let cipher = Speck64::from_u128(KEY);
        let nonce = 0xDEAD_BEEF_u64;
        let mut body = vec![0u8; 4 + 2 * BATCH_ENTRY_HEADER];
        body[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        let frame = finish_frame(BATCH_TAG, 2, nonce, &ctr_xor(&cipher, nonce, &body));

        let sentinel_len = HEADER_LEN + BODY_MIN + KEYCHECK_MAGIC.len();
        let mut disk = FileDisk::open_with_counters(&path, OpCounters::new()).unwrap();
        let mut block0 = disk.read_block_vec(BlockId(0)).unwrap();
        block0[sentinel_len..sentinel_len + frame.len()].copy_from_slice(&frame);
        BlockStore::write_block(&mut disk, BlockId(0), &block0).unwrap();
        BlockStore::flush(&mut disk).unwrap();
        drop(disk);

        let (mut wal, replay) =
            Wal::open(&path, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        assert!(replay.records.is_empty(), "corrupt batch is a torn tail");
        assert!(replay.torn_tail, "the damaged frame is scrubbed");
        wal.append_insert(7, b"still-usable").unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        assert_eq!(replay.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
