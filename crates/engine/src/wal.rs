//! Write-ahead log layered on an `sks-storage` [`FileDisk`].
//!
//! Logical model: an append-only byte stream of self-checking records,
//! packed across fixed-size blocks of a [`FileDisk`] (records straddle
//! block boundaries; blocks are used strictly sequentially, the free list
//! is never touched). Each record is
//!
//! ```text
//! tag(1)=0xA5 ‖ crc32(4) ‖ seq(8) ‖ nonce(8) ‖ blen(4) ‖ E(op ‖ key ‖ value)
//! ```
//!
//! with the CRC covering `seq ‖ nonce ‖ blen ‖ ciphertext`. The body —
//! operation, search key and record value — is sealed with an independent
//! stream cipher (Speck64-CTR keyed from the engine's WAL key, fresh
//! random per-record nonce stored in the clear so no two records ever
//! share keystream, even across checkpoint rewrites or torn-tail
//! rewrites). The log is the database's only durable representation, so
//! leaving it plaintext would hand the paper's opponent everything the
//! disguised tree withholds; sealing it keeps the §5 discipline that
//! stored key material is never readable off the medium.
//!
//! Record `seq 1` is a *key-check sentinel*: a sealed constant written at
//! creation. Opening with the wrong key decrypts the sentinel to garbage
//! and fails closed with a configuration error — it never touches the
//! data, so a mistyped key cannot destroy a log it cannot read.
//!
//! Replay accepts records while the tag, CRC and the strictly-increasing
//! sequence number all hold, and treats the first violation as the torn
//! tail of an interrupted write: everything before it is recovered,
//! everything after is scrubbed back to zeros so a later replay cannot
//! resurrect stale bytes.
//!
//! Durability follows a [`SyncPolicy`]: `Always` forces the device on
//! every commit; `EveryN(n)` is group commit — the block writes happen per
//! commit (so a process crash loses nothing) but only every `n`-th commit
//! pays the physical fsync (so a power failure can lose at most the last
//! `n − 1` commits). Those bounds assume the standard WAL storage model:
//! rewriting the partially-filled tail block preserves its unchanged
//! leading sectors (sector-level write atomicity), so a torn tail-block
//! write can damage at most the records not yet fsynced. Any I/O error in
//! the append path fail-stops the handle ([`EngineError::WalPoisoned`]):
//! a half-written record must not be built upon, and reopening replays
//! the log back to a consistent prefix.

use std::path::Path;

use sks_crypto::modes::ctr_xor;
use sks_crypto::speck::Speck64;
use sks_storage::{
    crc32, BlockId, BlockStore, EventKind, FailStore, FileDisk, OpCounters, Stage, StorageError,
    SyncPolicy, NO_PARTITION,
};

use crate::error::EngineError;

/// The device surface a [`Wal`] needs: sequential block writes, partial
/// reads for torn-tail recovery, a physical sync, and counter
/// re-pointing. [`FileDisk`] is the production device; a
/// [`FailStore<FileDisk>`] implements it too, so crash probes can tear a
/// WAL write mid-group-commit and watch recovery scrub the tail.
pub trait WalDevice {
    fn block_size(&self) -> usize;
    fn num_blocks(&self) -> u32;
    fn allocate(&mut self) -> Result<BlockId, StorageError>;
    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError>;
    /// Best-effort read returning however many bytes exist (zero-padded);
    /// see [`FileDisk::read_block_partial`].
    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError>;
    fn sync(&mut self) -> Result<(), StorageError>;
    fn set_counters(&mut self, counters: OpCounters);
}

impl WalDevice for FileDisk {
    fn block_size(&self) -> usize {
        BlockStore::block_size(self)
    }

    fn num_blocks(&self) -> u32 {
        BlockStore::num_blocks(self)
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        BlockStore::allocate(self)
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        BlockStore::write_block(self, id, data)
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        FileDisk::read_block_partial(self, id)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        FileDisk::sync(self)
    }

    fn set_counters(&mut self, counters: OpCounters) {
        FileDisk::set_counters(self, counters);
    }
}

impl WalDevice for FailStore<FileDisk> {
    fn block_size(&self) -> usize {
        BlockStore::block_size(self)
    }

    fn num_blocks(&self) -> u32 {
        BlockStore::num_blocks(self)
    }

    fn allocate(&mut self) -> Result<BlockId, StorageError> {
        BlockStore::allocate(self)
    }

    fn write_block(&mut self, id: BlockId, data: &[u8]) -> Result<(), StorageError> {
        BlockStore::write_block(self, id, data)
    }

    fn read_block_partial(&self, id: BlockId) -> Result<(Vec<u8>, usize), StorageError> {
        // Reads keep working after the plan trips (inspecting the
        // wreckage is the point of a crash probe).
        self.inner().read_block_partial(id)
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        // Routes through the plan so `arm_nth_flush` can kill a sync.
        BlockStore::flush(self)
    }

    fn set_counters(&mut self, counters: OpCounters) {
        self.inner_mut().set_counters(counters);
    }
}

const TAG: u8 = 0xA5;
/// `tag ‖ crc ‖ seq ‖ nonce ‖ blen`.
const HEADER_LEN: usize = 1 + 4 + 8 + 8 + 4;
/// `op ‖ key` inside the sealed body.
const BODY_MIN: usize = 1 + 8;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
/// Internal sentinel proving the opener holds the right key (record 1).
const OP_KEYCHECK: u8 = 3;
const KEYCHECK_MAGIC: &[u8; 16] = b"SKSWAL-KEYCHECK1";

/// A logged operation, as recovered by replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    Insert { key: u64, value: Vec<u8> },
    Delete { key: u64 },
}

/// One recovered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub op: WalOp,
}

/// What replay found in an existing log.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    pub records: Vec<WalRecord>,
    /// A record prefix failed its checksum (interrupted write): the valid
    /// prefix was kept, the rest scrubbed.
    pub torn_tail: bool,
    /// Bytes discarded past the last valid record.
    pub bytes_discarded: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed for the per-record nonce sequence: time, pid and a stack address
/// mixed together, so two log lifetimes (or two processes) draw from
/// disjoint 64-bit regions with overwhelming probability.
fn nonce_seed() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let addr = &t as *const _ as u64;
    splitmix64(t ^ addr.rotate_left(32) ^ u64::from(std::process::id()))
}

/// Append/commit/replay handle over one log file. Generic over the
/// [`WalDevice`] so crash probes can interpose a fault-injecting store;
/// the default parameter keeps plain `Wal` meaning the production
/// [`FileDisk`]-backed log.
#[derive(Debug)]
pub struct Wal<D: WalDevice = FileDisk> {
    disk: D,
    block_size: usize,
    /// In-memory image of the block currently being filled.
    tail: Vec<u8>,
    tail_used: usize,
    /// Block the tail occupies; `None` until the first byte lands.
    tail_id: Option<BlockId>,
    /// Next block the stream will move into once the tail fills.
    next_block: u32,
    next_seq: u64,
    nonce_state: u64,
    policy: SyncPolicy,
    pending_commits: u32,
    tail_dirty: bool,
    /// Set when an append-path I/O error leaves the stream in an unknown
    /// state; every later operation refuses until the log is reopened.
    poisoned: bool,
    cipher: Speck64,
    counters: OpCounters,
}

impl Wal {
    /// Creates a fresh, empty log (truncating any existing file), sealed
    /// under `wal_key`, and durably writes the key-check sentinel.
    pub fn create<P: AsRef<Path>>(
        path: P,
        block_size: usize,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<Self, EngineError> {
        let disk = FileDisk::create_with_counters(path, block_size, counters.clone())?;
        Wal::create_on_device(disk, block_size, wal_key, policy, counters)
    }

    /// Opens an existing log: verifies the key-check sentinel (failing
    /// closed, without touching the data, when the key is wrong), replays
    /// every intact record, scrubs any torn tail, and positions the
    /// handle for further appends.
    pub fn open<P: AsRef<Path>>(
        path: P,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<(Self, WalReplay), EngineError> {
        let disk = FileDisk::open_with_counters(path, counters.clone())?;
        Wal::open_on_device(disk, wal_key, policy, counters)
    }
}

impl<D: WalDevice> Wal<D> {
    /// [`Wal::create`] over an already-constructed device (fault probes
    /// wrap a [`FileDisk`] in a [`FailStore`] first).
    pub fn create_on_device(
        disk: D,
        block_size: usize,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<Self, EngineError> {
        let mut wal = Wal {
            disk,
            block_size,
            tail: vec![0u8; block_size],
            tail_used: 0,
            tail_id: None,
            next_block: 0,
            next_seq: 1,
            nonce_state: nonce_seed(),
            policy,
            pending_commits: 0,
            tail_dirty: false,
            poisoned: false,
            cipher: Speck64::from_u128(wal_key),
            counters,
        };
        wal.append_keycheck()?;
        Ok(wal)
    }

    /// [`Wal::open`] over an already-constructed device.
    pub fn open_on_device(
        disk: D,
        wal_key: u128,
        policy: SyncPolicy,
        counters: OpCounters,
    ) -> Result<(Self, WalReplay), EngineError> {
        let block_size = disk.block_size();
        let num_blocks = disk.num_blocks();
        let cipher = Speck64::from_u128(wal_key);

        // Stream the device block by block: records are parsed (and their
        // sealed bodies decrypted) incrementally, so peak memory is the
        // recovered records plus one compaction window — not a second
        // whole-log ciphertext copy. A physically truncated final region
        // (torn file) reads as zeros.
        let mut replay = WalReplay::default();
        let mut keycheck_seen = false;
        let mut expected_seq = 1u64;
        let mut buf: Vec<u8> = Vec::new();
        let mut start = 0usize; // parse cursor within `buf`
        let mut base_abs = 0usize; // absolute stream offset of `buf[0]`
        let mut real_end = 0usize; // absolute offset past the last non-zero byte
        let mut parsing = true;
        for b in 0..num_blocks {
            let (block, _have) = disk.read_block_partial(BlockId(b))?;
            if let Some(i) = block.iter().rposition(|&x| x != 0) {
                real_end = b as usize * block_size + i + 1;
            }
            if !parsing {
                continue; // only tracking real_end past the parse stop
            }
            buf.extend_from_slice(&block);
            loop {
                match parse_frame(&buf[start..], expected_seq) {
                    Frame::Complete { nonce, len } => {
                        let body = ctr_xor(&cipher, nonce, &buf[start + HEADER_LEN..start + len]);
                        if expected_seq == 1 {
                            // The sentinel: wrong decryption means wrong
                            // key — refuse before anything destructive.
                            if body[0] != OP_KEYCHECK || body[BODY_MIN..] != KEYCHECK_MAGIC[..] {
                                return Err(EngineError::Config(
                                    "wal key mismatch: the log was sealed under a different \
                                     tree/data key configuration"
                                        .into(),
                                ));
                            }
                            keycheck_seen = true;
                        } else {
                            let key =
                                u64::from_be_bytes(body[1..9].try_into().expect("fixed width"));
                            let op = match body[0] {
                                OP_INSERT => WalOp::Insert {
                                    key,
                                    value: body[BODY_MIN..].to_vec(),
                                },
                                OP_DELETE => WalOp::Delete { key },
                                _ => {
                                    parsing = false; // damaged body: torn
                                    break;
                                }
                            };
                            replay.records.push(WalRecord {
                                seq: expected_seq,
                                op,
                            });
                        }
                        start += len;
                        expected_seq += 1;
                    }
                    Frame::NeedMore => break, // feed the next block
                    Frame::End => {
                        parsing = false;
                        break;
                    }
                }
            }
            // Compact the window so long logs don't accumulate.
            if start > 4 * block_size {
                buf.drain(..start);
                base_abs += start;
                start = 0;
            }
        }
        let pos = base_abs + start;
        replay.torn_tail = real_end > pos;
        replay.bytes_discarded = real_end.saturating_sub(pos) as u64;
        counters.bump_by(|c| &c.wal_replayed, replay.records.len() as u64);
        drop(buf);

        let mut wal = Wal {
            disk,
            block_size,
            tail: vec![0u8; block_size],
            tail_used: pos % block_size,
            tail_id: None,
            next_block: (pos / block_size) as u32 + u32::from(!pos.is_multiple_of(block_size)),
            next_seq: expected_seq,
            nonce_state: nonce_seed(),
            policy,
            pending_commits: 0,
            tail_dirty: false,
            poisoned: false,
            cipher,
            counters,
        };
        if wal.tail_used > 0 {
            let tail_block = BlockId((pos / block_size) as u32);
            let (block, _have) = wal.disk.read_block_partial(tail_block)?;
            wal.tail[..wal.tail_used].copy_from_slice(&block[..wal.tail_used]);
            wal.tail_id = Some(tail_block);
        }
        if replay.torn_tail || replay.bytes_discarded > 0 {
            wal.scrub_after(pos)?;
            // Flight-recorder breadcrumb: where the valid stream ended and
            // how many trailing bytes recovery threw away.
            wal.counters.obs().note(
                EventKind::TornTailScrub,
                NO_PARTITION,
                pos as u64,
                replay.bytes_discarded,
                0,
            );
        }
        if !keycheck_seen {
            // Only reachable when the log start itself was destroyed (or
            // the file is brand-new empty): restore the sentinel so the
            // wrong-key guard holds for the next open.
            debug_assert_eq!(pos, 0, "keycheck can only be missing at stream start");
            wal.append_keycheck()?;
        }
        Ok((wal, replay))
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes the logical stream currently occupies.
    pub fn len_bytes(&self) -> u64 {
        match self.tail_id {
            Some(id) => id.0 as u64 * self.block_size as u64 + self.tail_used as u64,
            None => self.next_block as u64 * self.block_size as u64,
        }
    }

    /// Whether an earlier append-path failure fail-stopped this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Re-points counter accounting at a different shared set (used by
    /// checkpointing, which writes its snapshot against detached counters
    /// so internal rewrites don't masquerade as client traffic, then
    /// adopts the engine's counters for subsequent appends).
    pub(crate) fn adopt_counters(&mut self, counters: OpCounters) {
        self.disk.set_counters(counters.clone());
        self.counters = counters;
    }

    pub fn append_insert(&mut self, key: u64, value: &[u8]) -> Result<u64, EngineError> {
        self.append(OP_INSERT, key, value, true)
    }

    /// Re-reads the log from byte `from_offset` — which must be the
    /// frame boundary where record `from_seq` begins (a fuzzy
    /// checkpoint's epoch mark, captured as `(next_seq, len_bytes)`
    /// under the log lock) — and returns every client record from it
    /// onward, in order: the *tail* the checkpoint carries into the
    /// fresh log it cuts over to. The scan is O(tail), not O(log). The
    /// stream is self-written and framed, so no torn-tail handling
    /// applies here (the frame grammar below is [`Wal::open`]'s — keep
    /// the two in sync); the in-memory tail block is written out first
    /// so the scan sees everything appended so far. Reads run against
    /// detached counters: checkpoint bookkeeping is not client traffic.
    pub(crate) fn records_since(
        &mut self,
        from_seq: u64,
        from_offset: u64,
    ) -> Result<Vec<WalRecord>, EngineError> {
        self.check_poison()?;
        if self.tail_dirty {
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
        }
        let block_size = self.block_size;
        let first_block = (from_offset / block_size as u64) as u32;
        let mut out = Vec::new();
        let mut expected_seq = from_seq;
        let mut buf: Vec<u8> = Vec::new();
        let mut start = (from_offset % block_size as u64) as usize;
        self.disk.set_counters(OpCounters::new());
        let mut scan = || -> Result<(), EngineError> {
            'blocks: for b in first_block..self.disk.num_blocks() {
                let (block, _have) = self.disk.read_block_partial(BlockId(b))?;
                buf.extend_from_slice(&block);
                loop {
                    match parse_frame(&buf[start..], expected_seq) {
                        Frame::Complete { nonce, len } => {
                            let body =
                                ctr_xor(&self.cipher, nonce, &buf[start + HEADER_LEN..start + len]);
                            let key =
                                u64::from_be_bytes(body[1..9].try_into().expect("fixed width"));
                            match body[0] {
                                OP_INSERT => out.push(WalRecord {
                                    seq: expected_seq,
                                    op: WalOp::Insert {
                                        key,
                                        value: body[BODY_MIN..].to_vec(),
                                    },
                                }),
                                OP_DELETE => out.push(WalRecord {
                                    seq: expected_seq,
                                    op: WalOp::Delete { key },
                                }),
                                _ => {} // the key-check sentinel is not client traffic
                            }
                            start += len;
                            expected_seq += 1;
                        }
                        Frame::NeedMore => break,
                        Frame::End => break 'blocks,
                    }
                }
                if start > 4 * block_size {
                    buf.drain(..start);
                    start = 0;
                }
            }
            Ok(())
        };
        let result = scan();
        self.disk.set_counters(self.counters.clone());
        result?;
        Ok(out)
    }

    pub fn append_delete(&mut self, key: u64) -> Result<u64, EngineError> {
        self.append(OP_DELETE, key, &[], true)
    }

    /// Writes and fsyncs the key-check sentinel (not client traffic: no
    /// append counters).
    fn append_keycheck(&mut self) -> Result<(), EngineError> {
        debug_assert_eq!(self.next_seq, 1);
        self.append(OP_KEYCHECK, 0, KEYCHECK_MAGIC, false)?;
        self.flush()
    }

    fn append(&mut self, op: u8, key: u64, value: &[u8], count: bool) -> Result<u64, EngineError> {
        self.check_poison()?;
        let timer = self.counters.obs().start();
        let seq = self.next_seq;
        self.nonce_state = self.nonce_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let nonce = splitmix64(self.nonce_state);

        let mut body = Vec::with_capacity(BODY_MIN + value.len());
        body.push(op);
        body.extend_from_slice(&key.to_be_bytes());
        body.extend_from_slice(value);
        let sealed = ctr_xor(&self.cipher, nonce, &body);

        let mut rec = Vec::with_capacity(HEADER_LEN + sealed.len());
        rec.push(TAG);
        rec.extend_from_slice(&[0u8; 4]); // crc placeholder
        rec.extend_from_slice(&seq.to_be_bytes());
        rec.extend_from_slice(&nonce.to_be_bytes());
        rec.extend_from_slice(&(sealed.len() as u32).to_be_bytes());
        rec.extend_from_slice(&sealed);
        let crc = crc32(&rec[5..]);
        rec[1..5].copy_from_slice(&crc.to_be_bytes());

        if let Err(e) = self.append_bytes(&rec) {
            // A half-written record may sit in the stream; nothing after
            // it could be replayed, so refuse all further use.
            self.poisoned = true;
            return Err(e);
        }
        self.next_seq += 1;
        if count {
            self.counters.bump(|c| &c.wal_appends);
            self.counters.bump_by(|c| &c.wal_bytes, rec.len() as u64);
        }
        self.counters.obs().stage(Stage::WalAppend, timer);
        Ok(seq)
    }

    fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut off = 0;
        while off < bytes.len() {
            if self.tail_id.is_none() {
                let id = BlockId(self.next_block);
                self.ensure_allocated(id)?;
                self.tail_id = Some(id);
                self.next_block += 1;
                self.tail.fill(0);
                self.tail_used = 0;
            }
            let n = (self.block_size - self.tail_used).min(bytes.len() - off);
            self.tail[self.tail_used..self.tail_used + n].copy_from_slice(&bytes[off..off + n]);
            self.tail_used += n;
            off += n;
            self.tail_dirty = true;
            if self.tail_used == self.block_size {
                self.write_tail()?;
                self.tail_id = None;
            }
        }
        Ok(())
    }

    /// Makes everything appended so far visible to the device, then
    /// applies the [`SyncPolicy`]: returns `true` when this commit paid a
    /// physical fsync.
    pub fn commit(&mut self) -> Result<bool, EngineError> {
        self.check_poison()?;
        if self.tail_dirty {
            let timer = self.counters.obs().start();
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
            self.counters.obs().stage(Stage::WalAppend, timer);
        }
        self.pending_commits += 1;
        if self.policy.should_sync(self.pending_commits) {
            let amortised = self.pending_commits;
            self.force_sync()?;
            self.counters
                .obs()
                .note(EventKind::GroupCommit, NO_PARTITION, amortised as u64, 0, 0);
            return Ok(true);
        }
        Ok(false)
    }

    /// Unconditional write-out + fsync (checkpoint/shutdown path).
    pub fn flush(&mut self) -> Result<(), EngineError> {
        self.check_poison()?;
        if self.tail_dirty {
            if let Err(e) = self.write_tail() {
                self.poisoned = true;
                return Err(e);
            }
        }
        self.force_sync()
    }

    fn check_poison(&self) -> Result<(), EngineError> {
        if self.poisoned {
            return Err(EngineError::WalPoisoned);
        }
        Ok(())
    }

    fn force_sync(&mut self) -> Result<(), EngineError> {
        self.counters.bump(|c| &c.wal_fsyncs);
        let timer = self.counters.obs().start();
        if let Err(e) = self.disk.sync() {
            // An fsync failure may have silently dropped dirty pages
            // (Linux clears the error flag), so the durability of every
            // unsynced commit is now unknowable from this handle: fail
            // stop rather than ack future commits over a silent hole.
            self.poisoned = true;
            return Err(e.into());
        }
        self.counters.obs().stage(Stage::WalFsync, timer);
        self.pending_commits = 0;
        Ok(())
    }

    fn write_tail(&mut self) -> Result<(), EngineError> {
        let id = self.tail_id.expect("dirty tail always has a block");
        self.disk.write_block(id, &self.tail)?;
        self.tail_dirty = false;
        Ok(())
    }

    fn ensure_allocated(&mut self, id: BlockId) -> Result<(), EngineError> {
        while self.disk.num_blocks() <= id.0 {
            let got = self.disk.allocate()?;
            debug_assert!(got.0 < self.disk.num_blocks());
        }
        Ok(())
    }

    /// Zeroes every byte of the stream from `pos` onward (torn-tail
    /// scrub), so stale bytes can never be re-parsed as records.
    fn scrub_after(&mut self, pos: usize) -> Result<(), EngineError> {
        let first_block = (pos / self.block_size) as u32;
        let zero = vec![0u8; self.block_size];
        for b in first_block..self.disk.num_blocks() {
            if b == first_block && !pos.is_multiple_of(self.block_size) {
                // Preserve the valid prefix inside the boundary block.
                let mut buf = zero.clone();
                buf[..self.tail_used].copy_from_slice(&self.tail[..self.tail_used]);
                self.disk.write_block(BlockId(b), &buf)?;
            } else {
                self.disk.write_block(BlockId(b), &zero)?;
            }
        }
        self.disk.sync()?;
        Ok(())
    }

    #[cfg(test)]
    fn poison_for_test(&mut self) {
        self.poisoned = true;
    }
}

enum Frame {
    /// A CRC-valid frame with the expected sequence number; `len` is the
    /// full record length including the header.
    Complete { nonce: u64, len: usize },
    /// The buffer ends inside this frame; feed more bytes.
    NeedMore,
    /// Clean end of stream, or a frame-level violation (bad tag, bad CRC,
    /// sequence gap) — the caller distinguishes via trailing content.
    End,
}

fn parse_frame(buf: &[u8], expected_seq: u64) -> Frame {
    if buf.is_empty() {
        return Frame::NeedMore;
    }
    if buf[0] == 0 {
        return Frame::End;
    }
    if buf[0] != TAG {
        return Frame::End;
    }
    if buf.len() < HEADER_LEN {
        return Frame::NeedMore;
    }
    let crc_stored = u32::from_be_bytes(buf[1..5].try_into().expect("fixed width"));
    let seq = u64::from_be_bytes(buf[5..13].try_into().expect("fixed width"));
    let nonce = u64::from_be_bytes(buf[13..21].try_into().expect("fixed width"));
    let blen = u32::from_be_bytes(buf[21..25].try_into().expect("fixed width")) as usize;
    if blen < BODY_MIN || seq != expected_seq {
        return Frame::End;
    }
    let total = HEADER_LEN + blen;
    if buf.len() < total {
        return Frame::NeedMore;
    }
    if crc32(&buf[5..total]) != crc_stored {
        return Frame::End;
    }
    Frame::Complete { nonce, len: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u128 = 0x00AA_BB11_22CC_DD33_44EE_FF55_6677_8899;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sks_wal_{}_{}", std::process::id(), name));
        p
    }

    fn reopen(path: &std::path::Path) -> (Wal, WalReplay) {
        Wal::open(path, KEY, SyncPolicy::Always, OpCounters::new()).unwrap()
    }

    #[test]
    fn append_commit_replay_roundtrip() {
        let path = tmpfile("roundtrip");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..40u64 {
                wal.append_insert(k, format!("value-{k}").as_bytes())
                    .unwrap();
                wal.commit().unwrap();
            }
            wal.append_delete(7).unwrap();
            wal.commit().unwrap();
        }
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 41);
        assert_eq!(replay.records[0].seq, 2, "seq 1 is the key-check sentinel");
        assert_eq!(
            replay.records[40].op,
            WalOp::Delete { key: 7 },
            "last record is the delete"
        );
        assert_eq!(
            replay.records[12].op,
            WalOp::Insert {
                key: 12,
                value: b"value-12".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_straddle_blocks() {
        let path = tmpfile("straddle");
        {
            let mut wal =
                Wal::create(&path, 64, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            // 100-byte values force every record across block boundaries.
            for k in 0..10u64 {
                wal.append_insert(k, &[k as u8; 100]).unwrap();
                wal.commit().unwrap();
            }
        }
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 10);
        for (k, rec) in replay.records.iter().enumerate() {
            assert_eq!(
                rec.op,
                WalOp::Insert {
                    key: k as u64,
                    value: vec![k as u8; 100]
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appends_continue_after_reopen() {
        let path = tmpfile("continue");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            wal.append_insert(1, b"one").unwrap();
            wal.commit().unwrap();
        }
        {
            let (mut wal, replay) = reopen(&path);
            assert_eq!(replay.records.len(), 1);
            assert_eq!(wal.next_seq(), 3, "sentinel + one record consumed 1..=2");
            wal.append_insert(2, b"two").unwrap();
            wal.commit().unwrap();
        }
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].seq, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn log_bytes_never_leak_keys_or_values() {
        let path = tmpfile("sealed");
        // Distinctive key values whose big-endian bytes cannot collide
        // with the plaintext seq field or block padding.
        let secret_key = |k: u64| 0xDEAD_BEEF_0000_0000u64 | (k * 3 + 1);
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..32u64 {
                wal.append_insert(secret_key(k), b"EXTREMELY-SECRET-PAYLOAD")
                    .unwrap();
                wal.commit().unwrap();
            }
        }
        let raw = std::fs::read(&path).unwrap();
        assert!(
            !raw.windows(16).any(|w| w == &b"EXTREMELY-SECRET"[..]),
            "record values must be sealed on the medium"
        );
        for k in 0..32u64 {
            let needle = secret_key(k).to_be_bytes();
            let hits = raw.windows(8).filter(|w| *w == needle).count();
            assert_eq!(hits, 0, "plaintext key {k} visible in the log");
        }
        // But replay under the right key recovers everything.
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 32);
        assert_eq!(
            replay.records[5].op,
            WalOp::Insert {
                key: secret_key(5),
                value: b"EXTREMELY-SECRET-PAYLOAD".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn same_payload_twice_yields_distinct_cryptograms() {
        // Per-record nonces: identical plaintext must never produce
        // identical sealed bytes (checkpoint rewrites depend on this).
        let path = tmpfile("nonce_fresh");
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            wal.append_insert(42, b"SAME-PAYLOAD-SAME-KEY").unwrap();
            wal.append_insert(42, b"SAME-PAYLOAD-SAME-KEY").unwrap();
            wal.commit().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        // Find the two sealed bodies: scan for any repeated 21-byte
        // window (body length) outside the zero padding.
        let body_len = BODY_MIN + b"SAME-PAYLOAD-SAME-KEY".len();
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0;
        for w in raw.windows(body_len) {
            if w.iter().any(|&b| b != 0) && !seen.insert(w.to_vec()) {
                repeats += 1;
            }
        }
        assert_eq!(
            repeats, 0,
            "identical plaintexts produced repeated sealed bytes"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_key_fails_closed_without_destroying_the_log() {
        let path = tmpfile("wrong_key");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..8u64 {
                wal.append_insert(k, b"v").unwrap();
                wal.commit().unwrap();
            }
        }
        let err = Wal::open(&path, KEY ^ 1, SyncPolicy::Always, OpCounters::new())
            .map(|_| ())
            .expect_err("wrong key must be rejected");
        assert!(format!("{err}").contains("key mismatch"), "got: {err}");
        // The failed open must not have damaged anything: the right key
        // still recovers every record.
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncated_file_recovers_prefix() {
        let path = tmpfile("torn_truncate");
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..20u64 {
                wal.append_insert(k, &[0xCD; 50]).unwrap();
                wal.commit().unwrap();
            }
        }
        // Chop the file mid-way through the stream: a hard truncation of
        // the physical medium, cutting the last records in half.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 300).unwrap();
        drop(f);

        let (_wal, replay) = reopen(&path);
        assert!(replay.torn_tail, "truncation must be detected");
        assert!(
            !replay.records.is_empty() && replay.records.len() < 20,
            "a strict prefix survives, got {}",
            replay.records.len()
        );
        for (k, rec) in replay.records.iter().enumerate() {
            assert_eq!(
                rec.op,
                WalOp::Insert {
                    key: k as u64,
                    value: vec![0xCD; 50]
                }
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_corrupt_bytes_recover_prefix_and_scrub() {
        let path = tmpfile("torn_corrupt");
        let logical_len;
        {
            let mut wal =
                Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
            for k in 0..8u64 {
                wal.append_insert(k, &[7; 20]).unwrap();
                wal.commit().unwrap();
            }
            logical_len = wal.len_bytes();
        }
        // Flip bytes inside the last record's sealed body: the stream
        // starts after the FileDisk's fixed 8 KiB header, so this lands
        // 10 bytes before the logical end — mid-payload.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(8192 + logical_len - 10)).unwrap();
            f.write_all(&[0xFF; 5]).unwrap();
        }
        let (mut wal, replay) = reopen(&path);
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 7, "first seven records intact");

        // The scrub + reopen leaves a log that keeps working.
        wal.append_insert(99, b"after-recovery").unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_wal, replay) = reopen(&path);
        assert!(!replay.torn_tail, "scrubbed log is clean again");
        assert_eq!(replay.records.len(), 8);
        assert_eq!(
            replay.records[7].op,
            WalOp::Insert {
                key: 99,
                value: b"after-recovery".to_vec()
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_amortises_fsyncs() {
        let path = tmpfile("group_commit");
        let counters = OpCounters::new();
        {
            let mut wal =
                Wal::create(&path, 256, KEY, SyncPolicy::EveryN(8), counters.clone()).unwrap();
            for k in 0..64u64 {
                wal.append_insert(k, b"v").unwrap();
                wal.commit().unwrap();
            }
        }
        let s = counters.snapshot();
        assert_eq!(
            s.wal_appends, 64,
            "the key-check sentinel is not client traffic"
        );
        assert_eq!(
            s.wal_fsyncs,
            8 + 1,
            "64 commits at EveryN(8) = 8 fsyncs, +1 for the durable sentinel"
        );
        // Nothing is lost despite the amortisation (process exit, not
        // power failure).
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn records_since_returns_the_fuzzy_tail() {
        let path = tmpfile("records_since");
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        for k in 0..10u64 {
            wal.append_insert(k, format!("v{k}").as_bytes()).unwrap();
            wal.commit().unwrap();
        }
        let (mark, mark_offset) = (wal.next_seq(), wal.len_bytes());
        wal.append_insert(100, b"tail-a").unwrap();
        wal.append_delete(3).unwrap();
        // Deliberately no commit: the scan must see the in-memory tail.
        let tail = wal.records_since(mark, mark_offset).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(
            tail[0].op,
            WalOp::Insert {
                key: 100,
                value: b"tail-a".to_vec()
            }
        );
        assert_eq!(tail[1].op, WalOp::Delete { key: 3 });
        // From the very beginning: every client record, sentinel excluded.
        assert_eq!(wal.records_since(1, 0).unwrap().len(), 12);
        // An empty tail (mark at the stream end) scans to nothing.
        let (end_seq, end_off) = (wal.next_seq(), wal.len_bytes());
        assert!(wal.records_since(end_seq, end_off).unwrap().is_empty());
        // Appends still work after the scan.
        wal.append_insert(101, b"after").unwrap();
        wal.commit().unwrap();
        drop(wal);
        let (_wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 13);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_wal_fail_stops() {
        let path = tmpfile("poison");
        let mut wal = Wal::create(&path, 128, KEY, SyncPolicy::Always, OpCounters::new()).unwrap();
        wal.append_insert(1, b"ok").unwrap();
        wal.commit().unwrap();
        wal.poison_for_test();
        assert!(wal.is_poisoned());
        assert!(matches!(
            wal.append_insert(2, b"no"),
            Err(EngineError::WalPoisoned)
        ));
        assert!(matches!(wal.commit(), Err(EngineError::WalPoisoned)));
        assert!(matches!(wal.flush(), Err(EngineError::WalPoisoned)));
        // Reopen recovers the committed prefix and a fresh, usable handle.
        drop(wal);
        let (mut wal, replay) = reopen(&path);
        assert_eq!(replay.records.len(), 1);
        wal.append_insert(2, b"yes").unwrap();
        wal.commit().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
