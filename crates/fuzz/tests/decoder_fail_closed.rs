//! Property: `decode(mutate(valid_bytes))` is an error or a semantically
//! valid result — never a panic — for every disguise scheme's node codec
//! and for the sealed WAL stream on both engine backends. The seeded
//! drivers in `sks_fuzz::decoders` do the heavy sweeping; this pins the
//! property in proptest form so the contract is stated (and re-checked)
//! independently of the driver plumbing.

use proptest::prelude::*;
use sks_fuzz::{decoders, Backend};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every scheme's node codec survives arbitrary page corruption.
    #[test]
    fn node_codecs_never_panic_on_corrupt_pages(seed in 0u64..1_000_000) {
        if let Err(e) = decoders::run_node_codec_case(seed) {
            panic!("seed {seed}: {e}");
        }
    }

    /// The sealed WAL stream decoder recovers a clean prefix or fails
    /// cleanly under arbitrary file corruption.
    #[test]
    fn wal_stream_decoder_fails_closed(seed in 0u64..1_000_000) {
        if let Err(e) = decoders::run_wal_stream_case(seed) {
            panic!("seed {seed}: {e}");
        }
    }
}

proptest! {
    // Whole-directory cases build real trees/engines; keep the case count
    // CI-sized. The backend axis is covered explicitly below rather than
    // through `SKS_TEST_BACKEND`.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Record store, reverse index and manifest decoders fail closed when
    /// any tree file is corrupted.
    #[test]
    fn tree_directory_decoders_fail_closed(seed in 0u64..1_000_000) {
        if let Err(e) = decoders::run_tree_dir_case(seed) {
            panic!("seed {seed}: {e}");
        }
    }

    /// Engine recovery (WAL + snapshot streams + store superblocks) fails
    /// closed on both backends when any sealed file is corrupted.
    #[test]
    fn engine_recovery_fails_closed_on_both_backends(seed in 0u64..1_000_000) {
        for backend in [Backend::Memory, Backend::File] {
            if let Err(e) = decoders::run_engine_dir_case(seed, backend) {
                panic!("seed {seed} ({}): {e}", backend.name());
            }
        }
    }
}
