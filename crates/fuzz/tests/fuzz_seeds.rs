//! Fixed-seed regression coverage: a slice of every fuzz driver runs in
//! the ordinary test suite, on the backend chosen by `SKS_TEST_BACKEND`
//! (`memory` default | `file`), so the drivers themselves can never rot.
//! The full sweep runs in CI as the `fuzz-smoke` job via the
//! `fuzz_smoke` binary.

use sks_fuzz::{decoders, op_seq, wal_fault, Backend};

#[test]
fn op_sequence_crash_seeds_recover_consistently() {
    let backend = Backend::from_env();
    for seed in 0..8 {
        if let Err(e) = op_seq::run_op_sequence_case(seed, backend) {
            panic!("opseq seed {seed} ({}): {e}", backend.name());
        }
    }
}

#[test]
fn wal_fault_seeds_replay_consistently() {
    let mut fired = 0usize;
    for seed in 0..12 {
        match wal_fault::run_wal_fault_case(seed) {
            Ok(report) => fired += report.fired as usize,
            Err(e) => panic!("walfault seed {seed}: {e}"),
        }
    }
    // The kill-point registry must actually engage for the sweep to mean
    // anything; a mostly-idle plan means the ordinal bounds drifted.
    assert!(fired >= 4, "only {fired}/12 kill points fired");
}

#[test]
fn decoder_seeds_fail_closed() {
    let backend = Backend::from_env();
    for seed in 0..16 {
        if let Err(e) = decoders::run_decoder_case(seed, backend) {
            panic!("decoder seed {seed} ({}): {e}", backend.name());
        }
    }
}

/// Both engine backends get direct op-sequence coverage regardless of the
/// env axis — crash-and-reopen semantics differ materially between them
/// (snapshot streams vs store files).
#[test]
fn op_sequence_covers_both_backends() {
    for backend in [Backend::Memory, Backend::File] {
        if let Err(e) = op_seq::run_op_sequence_case(101, backend) {
            panic!("opseq seed 101 ({}): {e}", backend.name());
        }
    }
}
