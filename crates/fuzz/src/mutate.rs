//! Seeded byte-level mutations for corrupt-ciphertext fuzzing: bit flips,
//! byte stomps, truncation, extension, splices and zeroed runs — the
//! damage classes a failing medium or an active adversary can inflict on
//! sealed bytes. Every mutation is drawn from a [`FuzzRng`], so a seed
//! reproduces the exact corrupted image.

use crate::rng::FuzzRng;

/// One corruption round: applies `1..=max_edits` independent mutations to
/// a copy of `pristine` and returns it. Never returns the input unchanged
/// unless the input is empty (edits that cancel out get a forced bit
/// flip, so every round really exercises a corrupt image).
pub fn mutate(rng: &mut FuzzRng, pristine: &[u8], max_edits: usize) -> Vec<u8> {
    let mut out = pristine.to_vec();
    if out.is_empty() {
        return out;
    }
    let edits = 1 + rng.below(max_edits.max(1) as u64) as usize;
    for _ in 0..edits {
        apply_one(rng, &mut out);
        if out.is_empty() {
            break;
        }
    }
    if out == pristine {
        let i = rng.below(out.len() as u64) as usize;
        out[i] ^= 1 << rng.below(8);
    }
    out
}

fn apply_one(rng: &mut FuzzRng, buf: &mut Vec<u8>) {
    let len = buf.len() as u64;
    match rng.below(6) {
        // Flip a single bit — the classic single-event upset.
        0 => {
            let i = rng.below(len) as usize;
            buf[i] ^= 1 << rng.below(8);
        }
        // Stomp a byte with a random value.
        1 => {
            let i = rng.below(len) as usize;
            buf[i] = rng.next_u64() as u8;
        }
        // Truncate to a random prefix (a torn append / short file).
        2 => {
            let keep = rng.below(len + 1) as usize;
            buf.truncate(keep);
        }
        // Extend with random garbage (trailing junk past the real end).
        3 => {
            let extra = 1 + rng.below(64) as usize;
            let junk = rng.bytes(extra);
            buf.extend_from_slice(&junk);
        }
        // Splice: copy one internal range over another (misdirected
        // sector write — valid-looking bytes in the wrong place).
        4 => {
            let n = (1 + rng.below(32.min(len)) as usize).min(buf.len());
            let src = rng.below((buf.len() - n + 1) as u64) as usize;
            let dst = rng.below((buf.len() - n + 1) as u64) as usize;
            let chunk = buf[src..src + n].to_vec();
            buf[dst..dst + n].copy_from_slice(&chunk);
        }
        // Zero a run (a scrubbed or never-written region).
        _ => {
            let n = (1 + rng.below(64.min(len)) as usize).min(buf.len());
            let at = rng.below((buf.len() - n + 1) as u64) as usize;
            for b in &mut buf[at..at + n] {
                *b = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let pristine: Vec<u8> = (0..=255u8).collect();
        let a = mutate(&mut FuzzRng::new(3), &pristine, 4);
        let b = mutate(&mut FuzzRng::new(3), &pristine, 4);
        assert_eq!(a, b);
        let c = mutate(&mut FuzzRng::new(4), &pristine, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn never_identity_on_nonempty_input() {
        let pristine = vec![0xAB; 128];
        for seed in 0..64 {
            let m = mutate(&mut FuzzRng::new(seed), &pristine, 3);
            assert_ne!(m, pristine, "seed {seed} produced an identity mutation");
        }
    }
}
