//! Deterministic, CI-runnable adversarial fuzzing for the SKS engine.
//!
//! Three seeded drivers, no external fuzzer, no coverage feedback — a seed
//! fully determines every op, every injected fault, and every byte of
//! corruption, so any failure reproduces from its printed seed alone:
//!
//! - [`op_seq`]: arbitrary op sequences over a full [`sks_engine::SksDb`]
//!   (insert / get / delete / range / batch / txn / checkpoint / compact)
//!   with crash-and-reopen injected at seeded [`sks_storage::FailStore`]
//!   kill points, cross-checked against a shadow `BTreeMap` model
//!   ([`model::ShadowModel`]): recovery must land on a committed unit
//!   prefix — whole-batch / whole-txn atomicity, nothing acknowledged
//!   lost.
//! - [`wal_fault`]: the bare WAL under arbitrary fuzzed op sequences and
//!   seeded write/flush faults, generalising the fixed-workload
//!   `pipelined_wal_fault_sweep` to all three frame framings (legacy
//!   `0xA5`, batch `0xB5`, txn `0xC5`) across sync-policy / seal-batch /
//!   pipeline / overlap configurations.
//! - [`decoders`]: corrupt-ciphertext fuzzing of every sealed decoder —
//!   WAL streams, node codecs for every disguise scheme, record-store
//!   pages, reverse-index chains, tree manifests — asserting the
//!   fail-closed contract: a clean `Err`, never a panic, and no plaintext
//!   echoed into error text.

pub mod decoders;
pub mod model;
pub mod mutate;
pub mod op_seq;
pub mod rng;
pub mod wal_fault;

/// Which storage backend the op-sequence driver runs the engine on.
/// Mirrors the workspace-wide `SKS_TEST_BACKEND` axis used by the engine
/// integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    Memory,
    File,
}

impl Backend {
    /// Reads `SKS_TEST_BACKEND` (`memory` | `file`), defaulting to
    /// `memory` when unset or unrecognised — the same convention as
    /// `tests/engine_integration.rs`.
    pub fn from_env() -> Self {
        match std::env::var("SKS_TEST_BACKEND").as_deref() {
            Ok("file") => Backend::File,
            _ => Backend::Memory,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Backend::Memory => "memory",
            Backend::File => "file",
        }
    }
}

/// A scratch directory that cleans up after itself (success or panic).
/// Unique per (label, seed) so parallel test binaries never collide.
pub struct ScratchDir {
    path: std::path::PathBuf,
}

impl ScratchDir {
    pub fn new(label: &str, seed: u64) -> Self {
        let path =
            std::env::temp_dir().join(format!("sks-fuzz-{label}-{seed}-{}", std::process::id()));
        // A stale dir from a killed previous run must not leak state into
        // this seed; start from nothing.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
