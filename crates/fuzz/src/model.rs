//! The shadow model the op-sequence fuzzer cross-checks recovery against:
//! a plain `BTreeMap` image folded from the sequence of *commit units*
//! (one autocommit op, one batch, or one transaction — the engine's
//! atomicity granularity). After a crash, the reopened database must equal
//! the fold of some unit prefix: nothing torn mid-unit (whole-batch /
//! whole-txn atomicity) and nothing acknowledged-durable missing.

use std::collections::BTreeMap;

/// One atomic commit unit: the key → value (insert) / key → `None`
/// (delete) effects applied together.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    pub effects: Vec<(u64, Option<Vec<u8>>)>,
}

impl Unit {
    pub fn insert(key: u64, value: Vec<u8>) -> Self {
        Unit {
            effects: vec![(key, Some(value))],
        }
    }

    pub fn delete(key: u64) -> Self {
        Unit {
            effects: vec![(key, None)],
        }
    }
}

/// The recorded history: every unit submitted to the engine, and how many
/// of them were acknowledged (returned `Ok`) before the current crash.
#[derive(Debug, Default)]
pub struct ShadowModel {
    units: Vec<Unit>,
    /// Units 0..acked returned Ok to the client. Under `SyncPolicy::Always`
    /// an acknowledgement is a durability promise, so these must all
    /// survive any crash.
    acked: usize,
}

impl ShadowModel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn submitted(&self) -> usize {
        self.units.len()
    }

    pub fn acked(&self) -> usize {
        self.acked
    }

    /// Records a unit the engine acknowledged.
    pub fn push_acked(&mut self, unit: Unit) {
        debug_assert_eq!(self.acked, self.units.len(), "acks are a prefix");
        self.units.push(unit);
        self.acked += 1;
    }

    /// Records the unit in flight when the injected fault fired: it may or
    /// may not have reached the medium (a torn block can still carry the
    /// whole frame), but it must recover all-or-nothing.
    pub fn push_unacked(&mut self, unit: Unit) {
        self.units.push(unit);
    }

    /// The image after folding units `0..k`.
    pub fn image_at(&self, k: usize) -> BTreeMap<u64, Vec<u8>> {
        let mut map = BTreeMap::new();
        for unit in &self.units[..k] {
            for (key, effect) in &unit.effects {
                match effect {
                    Some(v) => {
                        map.insert(*key, v.clone());
                    }
                    None => {
                        map.remove(key);
                    }
                }
            }
        }
        map
    }

    /// The image of the full history (what a crash-free database holds).
    pub fn image(&self) -> BTreeMap<u64, Vec<u8>> {
        self.image_at(self.units.len())
    }

    /// Checks a recovered image against the history: it must equal
    /// `image_at(k)` for some `acked <= k <= submitted`. Returns the
    /// matching `k`, or a description of the divergence. Checking from
    /// the longest prefix down means the largest consistent recovery wins
    /// (ties between adjacent read-identical prefixes are harmless — the
    /// images are equal by definition).
    pub fn match_recovery(&self, recovered: &BTreeMap<u64, Vec<u8>>) -> Result<usize, String> {
        for k in (self.acked..=self.units.len()).rev() {
            if &self.image_at(k) == recovered {
                return Ok(k);
            }
        }
        let want = self.image_at(self.acked);
        let missing: Vec<u64> = want
            .keys()
            .filter(|k| !recovered.contains_key(*k))
            .copied()
            .collect();
        let extra: Vec<u64> = recovered
            .keys()
            .filter(|k| !want.contains_key(*k))
            .copied()
            .collect();
        let divergent: Vec<u64> = want
            .iter()
            .filter(|(k, v)| recovered.get(*k).is_some_and(|r| &r != v))
            .map(|(k, _)| *k)
            .collect();
        Err(format!(
            "recovered image matches no committed prefix (acked {} / submitted {}): \
             vs the acked image — missing keys {:?}, unexpected keys {:?}, wrong values {:?}",
            self.acked,
            self.units.len(),
            missing,
            extra,
            divergent
        ))
    }

    /// After a verified recovery to prefix `k`: the history is truncated
    /// to what actually survived and every survivor is (re-)durable once
    /// the next barrier lands.
    pub fn settle(&mut self, k: usize) {
        self.units.truncate(k);
        self.acked = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_prefix_matching() {
        let mut m = ShadowModel::new();
        m.push_acked(Unit::insert(1, b"a".to_vec()));
        m.push_acked(Unit::insert(2, b"b".to_vec()));
        m.push_unacked(Unit {
            effects: vec![(3, Some(b"c".to_vec())), (1, None)],
        });

        // Exactly the acked prefix.
        assert_eq!(m.match_recovery(&m.image_at(2)), Ok(2));
        // The in-flight unit landed whole.
        assert_eq!(m.match_recovery(&m.image_at(3)), Ok(3));
        // The in-flight unit landed *partially* — a torn txn — is rejected.
        let mut torn = m.image_at(2);
        torn.insert(3, b"c".to_vec()); // insert applied, delete lost
        assert!(m.match_recovery(&torn).is_err());
        // An acked unit missing is rejected.
        assert!(m.match_recovery(&m.image_at(1)).is_err());
    }

    #[test]
    fn settle_truncates_history() {
        let mut m = ShadowModel::new();
        m.push_acked(Unit::insert(1, b"a".to_vec()));
        m.push_unacked(Unit::insert(2, b"b".to_vec()));
        m.settle(1);
        assert_eq!(m.submitted(), 1);
        assert_eq!(m.acked(), 1);
        assert!(!m.image().contains_key(&2));
    }
}
