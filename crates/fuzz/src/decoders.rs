//! Corrupt-ciphertext fuzzing of every sealed decoder: WAL streams (all
//! three frame framings), node codecs for every disguise scheme,
//! record-store pages and reverse-index chains behind a tree directory,
//! and whole engine directories (WAL + snapshot streams + store files).
//!
//! The fail-closed contract every case asserts:
//!
//! - **no panic**: decoding attacker-controlled bytes returns `Err` (or a
//!   shorter valid prefix, for log streams) — it never unwinds;
//! - **no plaintext leak**: error text never echoes sealed record
//!   payloads (checked with a distinctive marker planted in every value);
//! - **bounded work**: corrupt length fields must not drive allocations —
//!   the decoders clamp counts to what the medium could actually hold,
//!   so a seed finishing at all (rather than aborting the process in the
//!   allocator) is the observable.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sks_btree_core::{Node, NodeCodec, RecordPtr};
use sks_core::{EncipheredBTree, Scheme, SchemeConfig};
use sks_engine::{EngineConfig, SksDb, Wal, WalOp};
use sks_storage::{BlockId, OpCounters, SyncPolicy};

use crate::mutate::mutate;
use crate::rng::FuzzRng;
use crate::{Backend, ScratchDir};

const WAL_KEY: u128 = 0xFEED_FACE_CAFE_BEEF_0011_2233_4455_6677;
/// Planted in every sealed value; must never surface in error text.
const MARKER: &str = "TOPSECRET-PLAINTEXT-CANARY";

/// Fails the case if an error's rendered text echoes the planted
/// plaintext marker.
fn assert_sealed_error(context: &str, text: &str) -> Result<(), String> {
    if text.contains(MARKER) {
        return Err(format!(
            "{context}: error text leaks sealed plaintext: {text}"
        ));
    }
    Ok(())
}

/// Dispatches one decoder-fuzz case per seed, rotating through the four
/// decoder families so a contiguous seed range sweeps all of them.
pub fn run_decoder_case(seed: u64, backend: Backend) -> Result<(), String> {
    match seed % 4 {
        0 => run_wal_stream_case(seed),
        1 => run_node_codec_case(seed),
        2 => run_tree_dir_case(seed),
        _ => run_engine_dir_case(seed, backend),
    }
}

/// Mutates a sealed WAL file and reopens it: the replay must be a clean
/// prefix of what was written (CRC framing drops damaged frames whole)
/// or a clean error — never a panic, never marker text in the error.
pub fn run_wal_stream_case(seed: u64) -> Result<(), String> {
    let mut rng = FuzzRng::new(seed ^ 0xDEC0_DE5A_11ED_0001);
    let scratch = ScratchDir::new("dec-wal", seed);
    let path = scratch.path().join("wal.sks");

    // Build a log mixing all three framings.
    let mut wal = Wal::create(&path, 256, WAL_KEY, SyncPolicy::Always, OpCounters::new())
        .map_err(|e| format!("create wal: {e}"))?;
    let seal_batch = rng.chance(50);
    wal.set_seal_batch(seal_batch);
    let mut written: Vec<WalOp> = Vec::new();
    for _ in 0..6 + rng.below(6) {
        let ops: Vec<WalOp> = (0..1 + rng.below(4))
            .map(|_| WalOp::Insert {
                key: rng.below(64),
                value: format!("{MARKER}-{}", rng.next_u64()).into_bytes(),
            })
            .collect();
        if ops.len() >= 2 && rng.chance(40) {
            wal.append_txn(&ops)
                .map_err(|e| format!("append_txn: {e}"))?;
        } else {
            for op in &ops {
                if let WalOp::Insert { key, value } = op {
                    wal.append_insert(*key, value)
                        .map_err(|e| format!("append: {e}"))?;
                }
            }
        }
        wal.commit().map_err(|e| format!("commit: {e}"))?;
        written.extend(ops);
    }
    drop(wal);

    // Corrupt and reopen.
    let pristine = std::fs::read(&path).map_err(|e| format!("read wal file: {e}"))?;
    let corrupt = mutate(&mut rng, &pristine, 4);
    std::fs::write(&path, &corrupt).map_err(|e| format!("write corrupt wal: {e}"))?;

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Wal::open(&path, WAL_KEY, SyncPolicy::Always, OpCounters::new())
    }));
    match outcome {
        Err(_) => Err("corrupt WAL stream panicked Wal::open".into()),
        Ok(Err(e)) => assert_sealed_error("Wal::open", &format!("{e}")),
        Ok(Ok((_, replay))) => {
            let got: Vec<WalOp> = replay.records.into_iter().map(|r| r.op).collect();
            if got.len() > written.len() || got[..] != written[..got.len()] {
                return Err(format!(
                    "corrupt WAL replayed {} records that are not a prefix of the {} written",
                    got.len(),
                    written.len()
                ));
            }
            Ok(())
        }
    }
}

/// Encodes one node under every scheme's codec, then decodes / probes
/// seeded corruptions of the page: must never panic, and whatever `Ok`
/// decode survives must uphold basic node invariants.
pub fn run_node_codec_case(seed: u64) -> Result<(), String> {
    let mut rng = FuzzRng::new(seed ^ 0xDEC0_DE5A_11ED_0002);
    for scheme in Scheme::ALL {
        let config = SchemeConfig::with_capacity(scheme, 64);
        let counters = OpCounters::new();
        let (codec, _) = config
            .build_codec(&counters)
            .map_err(|e| format!("{scheme:?}: build codec: {e}"))?;

        // One leaf and one internal node. Keys sit inside every scheme's
        // disguise domain — the figure-literal ExponentiationPaper
        // construction caps it at 13 regardless of requested capacity.
        let leaf = Node {
            id: BlockId(3),
            keys: vec![2, 5, 7, 11],
            data_ptrs: (0..4).map(|i| RecordPtr(1000 + i)).collect(),
            children: Vec::new(),
        };
        let internal = Node {
            id: BlockId(4),
            keys: vec![3, 9],
            data_ptrs: vec![RecordPtr(7), RecordPtr(8)],
            children: vec![BlockId(10), BlockId(11), BlockId(12)],
        };
        for node in [&leaf, &internal] {
            let mut page = vec![0u8; config.block_size];
            codec
                .encode(node, &mut page)
                .map_err(|e| format!("{scheme:?}: encode: {e}"))?;
            for _ in 0..8 {
                let corrupt = mutate(&mut rng, &page, 3);
                let probe_key = 1 + rng.below(11);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let decoded = codec.decode(node.id, &corrupt);
                    let probed = codec.probe(node.id, &corrupt, probe_key);
                    let cached = codec.decode_for_cache(node.id, &corrupt);
                    (decoded, probed, cached)
                }));
                let (decoded, probed, cached) = match outcome {
                    Err(_) => {
                        return Err(format!(
                            "{scheme:?}: corrupt page panicked the codec (node {})",
                            node.id.0
                        ))
                    }
                    Ok(r) => r,
                };
                if let Ok(n) = decoded {
                    // Semantic validity for whatever survives the seal.
                    if n.data_ptrs.len() != n.keys.len()
                        || (!n.children.is_empty() && n.children.len() != n.keys.len() + 1)
                    {
                        return Err(format!(
                            "{scheme:?}: corrupt page decoded to a structurally invalid node"
                        ));
                    }
                }
                for text in [
                    probed.err().map(|e| format!("{e}")),
                    cached.err().map(|e| format!("{e}")),
                ]
                .into_iter()
                .flatten()
                {
                    assert_sealed_error(&format!("{scheme:?} codec"), &text)?;
                }
            }
        }
    }
    Ok(())
}

/// Builds an on-disk tree (nodes + record store + reverse index +
/// manifest), corrupts one of its files, and reopens: opening and
/// reading must fail closed — no panic, no marker plaintext in errors.
pub fn run_tree_dir_case(seed: u64) -> Result<(), String> {
    let mut rng = FuzzRng::new(seed ^ 0xDEC0_DE5A_11ED_0003);
    let scratch = ScratchDir::new("dec-tree", seed);
    let dir = scratch.path().join("tree");
    let scheme = Scheme::ALL[(seed / 4) as usize % Scheme::ALL.len()];
    let mk_config = || SchemeConfig::with_capacity(scheme, 64).on_disk(&dir);

    {
        let mut tree =
            EncipheredBTree::create(mk_config()).map_err(|e| format!("create tree: {e}"))?;
        // Keys 1..=12 sit inside every scheme's disguise domain (the
        // figure-literal ExponentiationPaper construction caps it at 13).
        for key in 1..=12 {
            tree.insert(key, format!("{MARKER}-{key}").into_bytes())
                .map_err(|e| format!("insert: {e}"))?;
        }
        // A few deletes so the reverse-index delta chain has entries.
        for key in [3u64, 7, 11] {
            tree.delete(key).map_err(|e| format!("delete: {e}"))?;
        }
        tree.flush().map_err(|e| format!("flush: {e}"))?;
    }

    // Corrupt one store file, drawn from the seed.
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("read tree dir: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    if files.is_empty() {
        return Err("tree directory holds no files to corrupt".into());
    }
    let victim = &files[rng.below(files.len() as u64) as usize];
    let pristine = std::fs::read(victim).map_err(|e| format!("read victim: {e}"))?;
    let corrupt = mutate(&mut rng, &pristine, 4);
    std::fs::write(victim, &corrupt).map_err(|e| format!("write victim: {e}"))?;

    let victim_name = victim.file_name().unwrap_or_default().to_string_lossy();
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        let tree = match EncipheredBTree::open(mk_config()) {
            Ok(t) => t,
            Err(e) => return assert_sealed_error("tree open", &format!("{e}")),
        };
        // Open survived (corruption may sit in unread blocks): every read
        // must still fail closed rather than panic.
        for key in 0..26 {
            if let Err(e) = tree.get(key) {
                assert_sealed_error("tree get", &format!("{e}"))?;
            }
        }
        Ok(())
    }));
    match outcome {
        Err(_) => Err(format!(
            "corrupt {victim_name} ({scheme:?}) panicked tree open/read"
        )),
        Ok(r) => r.map_err(|e| format!("{e} (victim {victim_name}, {scheme:?})")),
    }
}

/// Builds a full engine directory (WAL, snapshots after a checkpoint,
/// store files on the file backend), corrupts one file, and reopens the
/// database: recovery must fail closed or come up readable — no panic,
/// no marker plaintext in errors.
pub fn run_engine_dir_case(seed: u64, backend: Backend) -> Result<(), String> {
    let mut rng = FuzzRng::new(seed ^ 0xDEC0_DE5A_11ED_0004);
    let scratch = ScratchDir::new(&format!("dec-eng-{}", backend.name()), seed);
    let dir = scratch.path();
    let mk_config = || {
        let storage = match backend {
            Backend::Memory => sks_core::StorageBackend::Memory,
            Backend::File => sks_core::StorageBackend::File {
                dir: dir.join("store"),
                pool_pages: 32,
            },
        };
        EngineConfig::new(
            SchemeConfig::with_capacity(Scheme::Oval, 128)
                .partitions(2)
                .backend(storage),
        )
        .sync(SyncPolicy::Always)
    };

    {
        let db = SksDb::open(dir, mk_config()).map_err(|e| format!("build engine: {e}"))?;
        for key in 0..32u64 {
            db.insert(key, format!("{MARKER}-{key}").into_bytes())
                .map_err(|e| format!("insert: {e}"))?;
        }
        // A checkpoint so snapshot streams exist alongside the WAL.
        db.checkpoint().map_err(|e| format!("checkpoint: {e}"))?;
        for key in 32..40u64 {
            db.insert(key, format!("{MARKER}-{key}").into_bytes())
                .map_err(|e| format!("insert: {e}"))?;
        }
    }

    // Corrupt one file anywhere under the engine directory.
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).map_err(|e| format!("read dir: {e}"))? {
            let path = entry.map_err(|e| format!("read dir entry: {e}"))?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "sks") {
                files.push(path);
            }
        }
    }
    files.sort();
    if files.is_empty() {
        return Err("engine directory holds no sealed files to corrupt".into());
    }
    let victim = &files[rng.below(files.len() as u64) as usize];
    let pristine = std::fs::read(victim).map_err(|e| format!("read victim: {e}"))?;
    let corrupt = mutate(&mut rng, &pristine, 4);
    std::fs::write(victim, &corrupt).map_err(|e| format!("write victim: {e}"))?;
    let victim_name = victim.file_name().unwrap_or_default().to_string_lossy();

    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        let db = match SksDb::open(dir, mk_config()) {
            Ok(db) => db,
            Err(e) => return assert_sealed_error("engine open", &format!("{e}")),
        };
        // Recovery survived; reads must fail closed, and whatever data
        // is visible must be records we actually wrote (a torn-prefix
        // image is legal, invented or cross-wired records are not).
        match db.range(0, u64::MAX) {
            Err(e) => assert_sealed_error("engine range", &format!("{e}"))?,
            Ok(image) => {
                let all: BTreeMap<u64, Vec<u8>> = (0..40u64)
                    .map(|k| (k, format!("{MARKER}-{k}").into_bytes()))
                    .collect();
                for (key, value) in image {
                    if all.get(&key) != Some(&value) {
                        return Err(format!(
                            "recovered image invented key {key} after corrupting {victim_name}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }));
    match outcome {
        Err(_) => Err(format!(
            "corrupt {victim_name} ({}) panicked engine open/read",
            backend.name()
        )),
        Ok(r) => r.map_err(|e| format!("{e} (victim {victim_name}, {})", backend.name())),
    }
}
