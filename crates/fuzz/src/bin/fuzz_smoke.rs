//! The CI smoke runner: sweeps a fixed, deterministic seed range through
//! all three fuzz drivers and exits non-zero printing the failing seed
//! (and driver) on the first contract violation. Reproduce any failure
//! with:
//!
//! ```text
//! cargo run -p sks-fuzz --bin fuzz_smoke -- --driver <name> --start <seed> --seeds 1
//! ```
//!
//! Flags: `--driver all|opseq|walfault|decoder` (default `all`),
//! `--seeds N` (per driver; default 24/24/48), `--start N` (first seed,
//! default 0), `--backend memory|file` (default from `SKS_TEST_BACKEND`).

use sks_fuzz::{decoders, op_seq, wal_fault, Backend};

fn main() {
    let mut driver = String::from("all");
    let mut seeds: Option<u64> = None;
    let mut start = 0u64;
    let mut backend = Backend::from_env();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--driver" => driver = value("--driver"),
            "--seeds" => seeds = Some(value("--seeds").parse().expect("--seeds: not a number")),
            "--start" => start = value("--start").parse().expect("--start: not a number"),
            "--backend" => {
                backend = match value("--backend").as_str() {
                    "file" => Backend::File,
                    "memory" => Backend::Memory,
                    other => panic!("--backend: unknown backend {other:?}"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_smoke [--driver all|opseq|walfault|decoder] \
                     [--seeds N] [--start N] [--backend memory|file]"
                );
                return;
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    let run_opseq = driver == "all" || driver == "opseq";
    let run_walfault = driver == "all" || driver == "walfault";
    let run_decoder = driver == "all" || driver == "decoder";
    let mut total = 0u64;
    let mut crashes = 0usize;
    let mut faults = 0usize;

    if run_opseq {
        let n = seeds.unwrap_or(24);
        for seed in start..start + n {
            match op_seq::run_op_sequence_case(seed, backend) {
                Ok(report) => crashes += report.crashes,
                Err(e) => die("opseq", seed, backend, &e),
            }
            total += 1;
        }
        println!(
            "opseq: {n} seeds on the {} backend, {crashes} injected crashes, all recoveries consistent",
            backend.name()
        );
    }
    if run_walfault {
        let n = seeds.unwrap_or(24);
        for seed in start..start + n {
            match wal_fault::run_wal_fault_case(seed) {
                Ok(report) => faults += report.fired as usize,
                Err(e) => die("walfault", seed, backend, &e),
            }
            total += 1;
        }
        println!("walfault: {n} seeds, {faults} kill points fired, all replays consistent");
    }
    if run_decoder {
        let n = seeds.unwrap_or(48);
        for seed in start..start + n {
            if let Err(e) = decoders::run_decoder_case(seed, backend) {
                die("decoder", seed, backend, &e);
            }
            total += 1;
        }
        println!("decoder: {n} corrupt-ciphertext seeds, every decoder failed closed");
    }

    println!("fuzz-smoke: {total} seeds green");
}

fn die(driver: &str, seed: u64, backend: Backend, error: &str) -> ! {
    eprintln!(
        "FUZZ FAILURE: driver={driver} seed={seed} backend={}",
        backend.name()
    );
    eprintln!("  {error}");
    eprintln!(
        "  reproduce: cargo run -p sks-fuzz --bin fuzz_smoke -- \
         --driver {driver} --start {seed} --seeds 1 --backend {}",
        backend.name()
    );
    std::process::exit(1);
}
