//! The bare-WAL fault fuzzer: generalises the engine's fixed-workload
//! `pipelined_wal_fault_sweep` to *arbitrary fuzzed op sequences*. Each
//! seed draws a log configuration (block size, sync policy, batch
//! sealing, pipelining, fsync overlap), a mixed stream of legacy /
//! batch / txn commit units, and one [`KillPoint`] on the underlying
//! [`FileDisk`]; after the kill the log is reopened with the plain
//! (fault-free) device and checked for:
//!
//! - **prefix recovery**: the replayed records are exactly a prefix of
//!   the submitted stream (payload-for-payload);
//! - **frame atomicity**: the prefix ends on a frame boundary — a batch
//!   (`0xB5`) or txn (`0xC5`) body never resurfaces half-applied;
//! - **durability floor**: everything covered by a successful fsync
//!   barrier (an `Ok(true)` commit, a waited overlap ticket, an explicit
//!   flush) is in the prefix;
//! - **usability**: the recovered log accepts appends and survives a
//!   second clean reopen.
//!
//! Accounting note: an op whose append or commit *errored* may still
//! replay — the injected fault can fire after its frame landed (a torn
//! block keeps its first half; a killed fsync loses nothing already
//! written). So the expected stream holds every *submitted* op, the
//! boundary set marks every frame end including the in-flight one, and
//! recovery may stop at any boundary at or above the durability floor.

use sks_engine::{Wal, WalOp};
use sks_storage::{FailStore, FileDisk, KillPoint, OpCounters, SyncPolicy};

use crate::rng::FuzzRng;
use crate::ScratchDir;

const WAL_KEY: u128 = 0x0123_4567_89AB_CDEF_1122_3344_5566_7788;
const KEY_SPACE: u64 = 64;

/// What one WAL-fault seed did.
#[derive(Debug)]
pub struct WalFaultReport {
    pub kill: KillPoint,
    pub fired: bool,
    pub submitted: usize,
    pub recovered: usize,
}

/// The drawn log configuration — part of the seed's identity, printed on
/// failure so a reproduction sees the same shape.
#[derive(Debug, Clone, Copy)]
struct LogShape {
    block_size: usize,
    policy: SyncPolicy,
    seal_batch: bool,
    pipeline: bool,
    overlap: bool,
}

fn draw_shape(rng: &mut FuzzRng) -> LogShape {
    let policy = match rng.below(3) {
        0 => SyncPolicy::Always,
        1 => SyncPolicy::EveryN(2 + rng.below(3) as u32),
        _ => SyncPolicy::Never,
    };
    let pipeline = rng.chance(50);
    LogShape {
        block_size: if rng.chance(50) { 256 } else { 512 },
        policy,
        seal_batch: rng.chance(60),
        pipeline,
        // Overlapped fsync only exists on the pipelined device.
        overlap: pipeline && rng.chance(50),
    }
}

fn draw_op(rng: &mut FuzzRng) -> WalOp {
    if rng.chance(75) {
        WalOp::Insert {
            key: rng.below(KEY_SPACE),
            value: rng.blob(48),
        }
    } else {
        WalOp::Delete {
            key: rng.below(KEY_SPACE),
        }
    }
}

/// One seeded case. Returns the report or the first contract violation.
pub fn run_wal_fault_case(seed: u64) -> Result<WalFaultReport, String> {
    let mut rng = FuzzRng::new(seed ^ 0x5AFE_10C4_F417_F00D);
    let scratch = ScratchDir::new("walfault", seed);
    let path = scratch.path().join("wal.sks");
    let shape = draw_shape(&mut rng);

    let counters = OpCounters::new();
    let disk = FileDisk::create_with_counters(&path, shape.block_size, counters.clone())
        .map_err(|e| format!("create disk: {e}"))?;
    let (store, plan) = FailStore::new(disk);
    let mut wal = Wal::create_on_device(store, shape.block_size, WAL_KEY, shape.policy, counters)
        .map_err(|e| format!("create wal: {e}"))?;
    wal.set_seal_batch(shape.seal_batch);
    if shape.pipeline {
        wal.enable_pipeline();
        wal.set_overlap(shape.overlap);
    }

    // Arm only after the sentinel is durably down: a kill during the
    // very first format correctly leaves an unopenable log — a dead end,
    // not a finding. Every later write (including tail rewrites of the
    // sentinel's own block) stays in scope.
    let kill = plan.arm_kill_point(rng.next_u64(), 20, 8);

    // Every op submitted to the log (appends that errored included — see
    // the module comment), the frame-boundary set, and the floor.
    let mut submitted: Vec<WalOp> = Vec::new();
    let mut boundaries: Vec<usize> = vec![0];
    let mut committed = 0usize; // records whose commit() returned Ok
    let mut floor = 0usize; // records fsync-acknowledged durable
    let mut pending_ticket: Option<(sks_engine::SyncTicket, usize)> = None;
    let mut fired = false;

    let total_units = 16 + rng.below(17) as usize; // 16..=32
    'units: for _ in 0..total_units {
        let is_txn = rng.chance(25);
        let ops: Vec<WalOp> = if is_txn {
            (0..2 + rng.below(3)).map(|_| draw_op(&mut rng)).collect()
        } else if rng.chance(35) {
            (0..2 + rng.below(4)).map(|_| draw_op(&mut rng)).collect()
        } else {
            vec![draw_op(&mut rng)]
        };

        // Record the unit as submitted up front: once an append call is
        // made, its frame may land even if the call errors.
        submitted.extend(ops.iter().cloned());
        if is_txn || (shape.seal_batch && ops.len() > 1) {
            // One frame for the whole unit.
            boundaries.push(submitted.len());
        } else {
            // One legacy frame per record.
            for i in (submitted.len() - ops.len() + 1)..=submitted.len() {
                boundaries.push(i);
            }
        }

        // Append.
        let append_result: Result<(), sks_engine::EngineError> = if is_txn {
            wal.append_txn(&ops).map(|_| ())
        } else {
            ops.iter().try_fold((), |(), op| match op {
                WalOp::Insert { key, value } => wal.append_insert(*key, value).map(|_| ()),
                WalOp::Delete { key } => wal.append_delete(*key).map(|_| ()),
            })
        };
        if let Err(e) = append_result {
            if !plan.tripped() {
                return Err(format!("append failed without injected fault: {e}"));
            }
            fired = true;
            break 'units;
        }

        // Commit, tracking the durability floor.
        let commit_result: Result<bool, sks_engine::EngineError> =
            if shape.pipeline && shape.overlap {
                wal.commit_pipelined().map(|ticket| {
                    if let Some(t) = ticket {
                        pending_ticket = Some((t, submitted.len()));
                    }
                    false
                })
            } else {
                wal.commit()
            };
        match commit_result {
            Ok(synced) => {
                committed = submitted.len();
                if synced {
                    floor = committed;
                }
            }
            Err(e) => {
                if !plan.tripped() {
                    return Err(format!("commit failed without injected fault: {e}"));
                }
                fired = true;
                break 'units;
            }
        }

        // Retire at most one in-flight overlapped fsync per unit, so a
        // ticketed barrier's durability is enforced before long.
        if let Some((t, n)) = pending_ticket.take() {
            match t.wait() {
                Ok(()) => floor = floor.max(n),
                Err(e) => {
                    if !plan.tripped() {
                        return Err(format!(
                            "overlapped fsync failed without injected fault: {e}"
                        ));
                    }
                    fired = true;
                    break 'units;
                }
            }
        }

        // Occasional explicit durability barrier.
        if rng.chance(15) {
            match wal.flush() {
                Ok(()) => floor = committed,
                Err(e) => {
                    if !plan.tripped() {
                        return Err(format!("flush failed without injected fault: {e}"));
                    }
                    fired = true;
                    break 'units;
                }
            }
        }
    }

    if !fired {
        // The kill point sat beyond this seed's activity. Finish cleanly:
        // everything must be durable and replay exactly.
        match wal.flush() {
            Ok(()) => floor = committed,
            Err(e) => {
                if !plan.tripped() {
                    return Err(format!("final flush failed without injected fault: {e}"));
                }
                fired = true;
            }
        }
    }
    drop(pending_ticket);
    drop(wal);

    // Reopen with the plain device: recovery must hold.
    let (mut wal2, replay) = Wal::open(&path, WAL_KEY, SyncPolicy::Always, OpCounters::new())
        .map_err(|e| format!("reopen after {kill:?} failed: {e}"))?;
    let got: Vec<WalOp> = replay.records.iter().map(|r| r.op.clone()).collect();

    // Prefix of the submitted stream.
    if got.len() > submitted.len() || got[..] != submitted[..got.len()] {
        return Err(format!(
            "replayed {} records are not a prefix of the {} submitted (shape {shape:?}, {kill:?})",
            got.len(),
            submitted.len()
        ));
    }
    // Frame atomicity: the cut lands on a frame boundary.
    if !boundaries.contains(&got.len()) {
        return Err(format!(
            "replay stopped mid-frame at record {} (valid boundaries {:?}, shape {shape:?}, {kill:?})",
            got.len(),
            boundaries
        ));
    }
    // Durability floor.
    if got.len() < floor {
        return Err(format!(
            "fsync-acknowledged records lost: floor {} but only {} replayed (shape {shape:?}, {kill:?})",
            floor,
            got.len()
        ));
    }

    // Post-recovery usability: the log must take appends and survive a
    // second reopen.
    let recovered = got.len();
    wal2.append_insert(9_999, b"post-recovery probe")
        .map_err(|e| format!("append after recovery failed: {e}"))?;
    wal2.commit()
        .map_err(|e| format!("commit after recovery failed: {e}"))?;
    drop(wal2);
    let (_, replay2) = Wal::open(&path, WAL_KEY, SyncPolicy::Always, OpCounters::new())
        .map_err(|e| format!("second reopen failed: {e}"))?;
    if replay2.records.len() != recovered + 1 {
        return Err(format!(
            "post-recovery append lost: {} records after reopen, expected {}",
            replay2.records.len(),
            recovered + 1
        ));
    }

    Ok(WalFaultReport {
        kill,
        fired,
        submitted: submitted.len(),
        recovered,
    })
}
