//! The op-sequence crash fuzzer: drives a full [`SksDb`] with a seeded
//! arbitrary mix of engine operations, kills it at seeded
//! [`FailStore`] kill points on the WAL device, reopens, and cross-checks
//! the recovered image against a shadow [`ShadowModel`].
//!
//! The contract checked after every crash-and-reopen:
//!
//! - the recovered image equals the fold of a *commit-unit prefix* of the
//!   submitted history — a batch or transaction is never half-applied;
//! - under [`SyncPolicy::Always`] every acknowledged (`Ok`-returned) unit
//!   is in that prefix — durability promises survive the kill;
//! - an operation that fails when no fault is armed, or a reopen that
//!   fails after the plan is cleared, is a real engine bug and fails the
//!   seed.

use std::collections::BTreeMap;
use std::sync::Arc;

use sks_core::{Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, SksDb};
use sks_storage::{FailPlan, KillPoint, SyncPolicy};

use crate::model::{ShadowModel, Unit};
use crate::rng::FuzzRng;
use crate::{Backend, ScratchDir};

/// Keyspace the driver works over — small enough that inserts, deletes
/// and range scans collide constantly (the interesting regime for B-tree
/// splits, merges and tombstones).
const KEY_SPACE: u64 = 48;
/// Disguise capacity: comfortably above the keyspace for every scheme.
const CAPACITY: u64 = 256;
/// At most this many injected crashes per seed.
const MAX_CRASHES: usize = 3;

/// What one op-sequence seed did — for smoke-run summaries.
#[derive(Debug, Default)]
pub struct OpSeqReport {
    pub units: usize,
    pub crashes: usize,
    pub kills: Vec<KillPoint>,
    pub final_keys: usize,
}

fn make_config(backend: Backend, dir: &std::path::Path, partitions: usize) -> EngineConfig {
    let storage = match backend {
        Backend::Memory => StorageBackend::Memory,
        Backend::File => StorageBackend::File {
            dir: dir.join("store"),
            pool_pages: 64,
        },
    };
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, CAPACITY)
        .partitions(partitions)
        .backend(storage);
    // Always-sync so every Ok is a durability promise the model can hold
    // the engine to; weaker policies would only allow prefix checks.
    EngineConfig::new(scheme).sync(SyncPolicy::Always)
}

/// One seeded case. Returns the report, or a description of the first
/// divergence (the seed is appended by the caller).
pub fn run_op_sequence_case(seed: u64, backend: Backend) -> Result<OpSeqReport, String> {
    let mut rng = FuzzRng::new(seed ^ 0x05EC_0DE5_EEDF_ACE1);
    let scratch = ScratchDir::new(&format!("opseq-{}", backend.name()), seed);
    let dir = scratch.path();
    let partitions = 1 + rng.below(2) as usize;

    let plan = FailPlan::new();
    // Open unarmed: a fault during the very first format would leave a
    // half-created database that correctly refuses to open — a dead end
    // for the driver, not a bug. Checkpoint-time WAL creation *is*
    // fuzzed (the plan is shared with the fresh log's device).
    let mut db: Arc<SksDb> = SksDb::open(
        dir,
        make_config(backend, dir, partitions).wal_fault(plan.clone()),
    )
    .map_err(|e| format!("initial open failed: {e}"))?;

    let mut report = OpSeqReport::default();
    let kill = plan.arm_kill_point(rng.next_u64(), 24, 12);
    report.kills.push(kill);

    let mut model = ShadowModel::new();
    // The live image: fold of all acked units, kept incrementally.
    let mut live: BTreeMap<u64, Vec<u8>> = BTreeMap::new();

    let total_units = 36 + rng.below(25) as usize; // 36..=60
    let mut unit_no = 0;
    while unit_no < total_units {
        unit_no += 1;
        // A mid-sequence checkpoint is guaranteed so the cut path (and
        // its fresh fault-wrapped WAL) is always exercised; the rest of
        // the mix is drawn from the seed.
        let roll = if unit_no == total_units / 2 {
            90
        } else {
            rng.below(100)
        };
        let outcome: Result<(), String> = match roll {
            // Single-op autocommit insert.
            0..=34 => {
                let key = rng.below(KEY_SPACE);
                let value = rng.blob(96);
                let unit = Unit::insert(key, value.clone());
                step(db.insert(key, value), unit, &mut model, &mut live)
            }
            // Single-op autocommit delete.
            35..=49 => {
                let key = rng.below(KEY_SPACE);
                let unit = Unit::delete(key);
                step(db.delete(key), unit, &mut model, &mut live)
            }
            // Batch insert. Atomicity is *per partition group*: the
            // engine regroups the items by partition and commits one
            // batch frame per group, in partition order — so the model
            // records one unit per group, and a crash mid-batch may
            // validly land a prefix of the groups.
            50..=62 => {
                let n = 2 + rng.below(5) as usize;
                let items: Vec<(u64, Vec<u8>)> = (0..n)
                    .map(|_| (rng.below(KEY_SPACE), rng.blob(64)))
                    .collect();
                let mut groups: Vec<Unit> = (0..partitions).map(|_| Unit::default()).collect();
                for (key, value) in &items {
                    let p = db
                        .partition_of(*key)
                        .map_err(|e| format!("unit {unit_no}: routing failed: {e}"))?;
                    groups[p].effects.push((*key, Some(value.clone())));
                }
                groups.retain(|g| !g.effects.is_empty());
                step_units(db.insert_batch(items), groups, &mut model, &mut live)
            }
            // Multi-op transaction: atomic as one WAL txn frame.
            63..=74 => {
                let n = 2 + rng.below(4) as usize;
                let mut unit = Unit::default();
                let mut txn = db.begin();
                let mut buffered: Result<(), sks_engine::EngineError> = Ok(());
                for _ in 0..n {
                    if rng.chance(70) {
                        let key = rng.below(KEY_SPACE);
                        let value = rng.blob(64);
                        unit.effects.push((key, Some(value.clone())));
                        buffered = txn.insert(key, value);
                    } else {
                        let key = rng.below(KEY_SPACE);
                        unit.effects.push((key, None));
                        buffered = txn.delete(key);
                    }
                    if buffered.is_err() {
                        break;
                    }
                }
                let result = buffered.and_then(|()| txn.commit());
                drop(txn); // must not outlive a crash-reopen of `db`
                step(result, unit, &mut model, &mut live)
            }
            // Read checks: no model change, but the live image must match.
            75..=84 => {
                let key = rng.below(KEY_SPACE);
                match db.get(key) {
                    Ok(got) => {
                        if got.as_ref() != live.get(&key) {
                            Err(format!("get({key}) diverged from the model image"))
                        } else {
                            Ok(())
                        }
                    }
                    Err(e) => Err(format!("read failed (reads must survive faults): {e}")),
                }
            }
            85..=88 => {
                let lo = rng.below(KEY_SPACE);
                let hi = lo + rng.below(KEY_SPACE - lo + 1);
                match db.range(lo, hi) {
                    Ok(got) => {
                        let want: Vec<(u64, Vec<u8>)> =
                            live.range(lo..=hi).map(|(k, v)| (*k, v.clone())).collect();
                        if got != want {
                            Err(format!("range({lo},{hi}) diverged from the model image"))
                        } else {
                            Ok(())
                        }
                    }
                    Err(e) => Err(format!("range failed (reads must survive faults): {e}")),
                }
            }
            // Checkpoint: cuts the WAL; no logical change. A fault here
            // fires inside the cut (old log stays authoritative) and the
            // crash path below must still land on the full acked image.
            89..=93 => step_noop(db.checkpoint().map(|_| ()), &mut model),
            // Compaction: physical-only; no logical change.
            94..=95 => step_noop(db.compact(4).map(|_| ()), &mut model),
            // Explicit flush: a durability barrier with no logical change.
            _ => step_noop(db.flush(), &mut model),
        };

        if let Err(divergence) = outcome {
            // Only an injected fault excuses a failure — anything else is
            // a finding. `divergence` already carries op context for
            // model mismatches (those never involve the plan).
            if !plan.tripped() {
                return Err(format!("unit {unit_no}: {divergence}"));
            }
            report.crashes += 1;
            // Crash: drop the handle (releasing the dir lock), clear the
            // fault plan, and the database MUST reopen.
            drop(db);
            plan.reset();
            db = SksDb::open(
                dir,
                make_config(backend, dir, partitions).wal_fault(plan.clone()),
            )
            .map_err(|e| format!("unit {unit_no}: reopen after crash failed: {e}"))?;
            let recovered: BTreeMap<u64, Vec<u8>> = db
                .range(0, u64::MAX)
                .map_err(|e| format!("unit {unit_no}: post-recovery scan failed: {e}"))?
                .into_iter()
                .collect();
            let k = model
                .match_recovery(&recovered)
                .map_err(|e| format!("unit {unit_no} (after {kill:?}): {e}"))?;
            model.settle(k);
            live = recovered;
            if report.crashes < MAX_CRASHES {
                let kill = plan.arm_kill_point(rng.next_u64(), 24, 12);
                report.kills.push(kill);
            }
        }
    }

    // End of sequence: everything acked must be exactly the image — no
    // fault is in flight, so this is an equality check, not a prefix one.
    let final_image: BTreeMap<u64, Vec<u8>> = db
        .range(0, u64::MAX)
        .map_err(|e| format!("final scan failed: {e}"))?
        .into_iter()
        .collect();
    if final_image != model.image() {
        return Err("final image diverged from the model after the full sequence".into());
    }

    // And it must survive one last clean close-and-reopen.
    drop(db);
    plan.reset();
    let db = SksDb::open(dir, make_config(backend, dir, partitions))
        .map_err(|e| format!("final reopen failed: {e}"))?;
    let reopened: BTreeMap<u64, Vec<u8>> = db
        .range(0, u64::MAX)
        .map_err(|e| format!("final reopened scan failed: {e}"))?
        .into_iter()
        .collect();
    if reopened != model.image() {
        return Err("image diverged across a clean close-and-reopen".into());
    }

    report.units = model.submitted();
    report.final_keys = reopened.len();
    Ok(report)
}

/// Applies one write unit's result to the model: `Ok` acks the unit and
/// folds it into the live image; `Err` records it in-flight and bubbles
/// the error for crash handling.
fn step<T>(
    result: Result<T, sks_engine::EngineError>,
    unit: Unit,
    model: &mut ShadowModel,
    live: &mut BTreeMap<u64, Vec<u8>>,
) -> Result<(), String> {
    step_units(result, vec![unit], model, live)
}

/// [`step`] for an op that commits several units in order (a batch's
/// per-partition groups): `Ok` acks them all; `Err` records them all as
/// in-flight — recovery may keep any prefix of them.
fn step_units<T>(
    result: Result<T, sks_engine::EngineError>,
    units: Vec<Unit>,
    model: &mut ShadowModel,
    live: &mut BTreeMap<u64, Vec<u8>>,
) -> Result<(), String> {
    match result {
        Ok(_) => {
            for unit in units {
                for (key, effect) in &unit.effects {
                    match effect {
                        Some(v) => {
                            live.insert(*key, v.clone());
                        }
                        None => {
                            live.remove(key);
                        }
                    }
                }
                model.push_acked(unit);
            }
            Ok(())
        }
        Err(e) => {
            for unit in units {
                model.push_unacked(unit);
            }
            Err(format!("write failed: {e}"))
        }
    }
}

/// Applies a logically-empty unit (checkpoint / compact / flush): nothing
/// to fold; an error just triggers crash handling with no unit in flight.
fn step_noop(
    result: Result<(), sks_engine::EngineError>,
    _model: &mut ShadowModel,
) -> Result<(), String> {
    result.map_err(|e| format!("maintenance op failed: {e}"))
}
