//! The harness PRNG: splitmix64, the same generator every seeded sweep in
//! this workspace already uses. Tiny, biasless enough for fuzzing, and —
//! the property everything here depends on — a seed fully determines the
//! stream, so any failure reproduces from its printed seed alone.

/// Deterministic fuzzing RNG. `FuzzRng::new(seed)` with equal seeds yields
/// equal streams on every platform.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform-ish draw in `lo..hi` (`lo < hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// True with probability `pct` / 100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// A random non-empty byte vector of length `1..=max`.
    pub fn blob(&mut self, max: usize) -> Vec<u8> {
        let len = 1 + self.below(max.max(1) as u64) as usize;
        self.bytes(len)
    }

    /// A random byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            out.extend_from_slice(&self.next_u64().to_be_bytes());
        }
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(7);
        let mut b = FuzzRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FuzzRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
