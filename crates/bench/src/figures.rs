//! Regeneration of the paper's Figures 1–3: a small B-tree over the
//! `(13,4,1)` treatment domain shown before and after each substitution,
//! with pointers enciphered.
//!
//! The paper's figures draw a two-level B-tree whose node blocks hold
//! `[search key | tree ptr | data ptr]` cells with the pointer fields
//! shaded ("encrypted elements"). We render the same structure as ASCII:
//! the logical tree (what the legal user sees) and the disk view (what the
//! opponent sees: substituted keys; pointer cryptograms abbreviated).

use sks_core::{EncipheredBTree, Scheme, SchemeConfig};

/// Builds the small demonstration tree the figures use: keys drawn from the
/// `(13,4,1)` treatment domain.
fn demo_tree(scheme: Scheme) -> EncipheredBTree {
    let cfg = SchemeConfig::demo(scheme);
    let mut tree = EncipheredBTree::create_in_memory(cfg).expect("demo config builds");
    // A key set that produces a two-level tree at the demo block size and
    // stays inside every scheme's domain (≥3 avoids the literal
    // exponentiation scheme's documented ambiguous keys 1 and 2).
    let keys: &[u64] = match scheme {
        Scheme::ExponentiationPaper => &[3, 4, 5, 6, 8, 9, 11],
        Scheme::Exponentiation => &[1, 2, 3, 4, 5, 6, 8, 9, 11],
        _ => &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
    };
    for &k in keys {
        tree.insert(k, format!("rec{k}").into_bytes())
            .expect("demo key in domain");
    }
    tree
}

fn render_figure(title: &str, note: &str, tree: &EncipheredBTree) -> String {
    let logical = tree.render_logical().expect("render");
    let disk = tree.render_disk_view().expect("render");
    format!(
        "{title}\n{note}\n\n  Logical tree (legal user's view, recovered keys):\n{}\n  Disk view (opponent's view: substituted keys; all pointers encrypted):\n{}\n",
        indent(&logical),
        indent(&disk)
    )
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Figure 1 — search key substitution using treatments on ovals (§4.1).
pub fn figure_f1() -> String {
    let tree = demo_tree(Scheme::Oval);
    render_figure(
        "F1  B-tree with oval substitution (paper Figure 1)",
        "    k̂ = 7k mod 13; tree/data pointers E(b‖a‖p) under DES",
        &tree,
    )
}

/// Figure 2 — search key substitution using exponentiation modulus (§4.2),
/// the literal paper construction.
pub fn figure_f2() -> String {
    let tree = demo_tree(Scheme::ExponentiationPaper);
    render_figure(
        "F2  B-tree with exponentiation substitution (paper Figure 2)",
        "    k = 7^e mod 13 → k̂ = 7^(7e mod 13) mod 13 (keys 1,2 excluded: documented collision)",
        &tree,
    )
}

/// Figure 3 — search key substitution using the sum of treatments (§4.3).
pub fn figure_f3() -> String {
    let tree = demo_tree(Scheme::SumOfTreatments);
    render_figure(
        "F3  B-tree with sum-of-treatments substitution (paper Figure 3)",
        "    k̂ = Σ treatments of lines L0..Lk (order-preserving: same shape as plaintext tree)",
        &tree,
    )
}

/// All three figures plus the plaintext reference tree.
pub fn all_figures() -> String {
    let plain = demo_tree(Scheme::Plaintext);
    let reference = render_figure(
        "F0  Reference plaintext B-tree (before any encipherment)",
        "    the tree every figure starts from",
        &plain,
    );
    format!(
        "{reference}\n{}\n{}\n{}",
        figure_f1(),
        figure_f2(),
        figure_f3()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_and_differ_from_logical() {
        for fig in [figure_f1(), figure_f2(), figure_f3()] {
            assert!(fig.contains("Logical tree"));
            assert!(fig.contains("Disk view"));
        }
    }

    #[test]
    fn f1_disk_view_shows_oval_substitutes() {
        // Key 1 must appear as 7 on disk ("1 is substituted by 7").
        let tree = demo_tree(Scheme::Oval);
        let disk = tree.render_disk_view().unwrap();
        let logical = tree.render_logical().unwrap();
        assert_ne!(disk, logical);
        // The root separator keys in logical order appear scrambled on disk.
        assert!(disk.contains('['));
    }

    #[test]
    fn f3_shapes_match() {
        let tree = demo_tree(Scheme::SumOfTreatments);
        let disk = tree.render_disk_view().unwrap();
        let logical = tree.render_logical().unwrap();
        let shape = |s: &str| {
            s.lines()
                .map(|l| l.matches('[').count())
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&disk), shape(&logical), "§4.3 preserves the shape");
        // And the disk values are the cumulative sums.
        assert!(disk.contains("13") || disk.contains("30") || disk.contains("51"));
    }

    #[test]
    fn all_figures_concatenates() {
        let all = all_figures();
        assert!(all.contains("F0"));
        assert!(all.contains("F1"));
        assert!(all.contains("F2"));
        assert!(all.contains("F3"));
    }
}
