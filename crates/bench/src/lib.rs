//! # sks-bench — reproduction harness
//!
//! * [`tables`] — bit-exact regeneration of the paper's printed tables
//!   (T1: lines→ovals; T2: exponentiation grid; T3: cumulative sums).
//! * [`figures`] — the Figure 1–3 B-trees, logical and disk views.
//! * [`experiments`] — the quantitative experiments E1–E8 derived from the
//!   paper's claims (DESIGN.md §4 maps each to its section).
//! * [`workload`] — deterministic key sets, tree builders, ground truth.
//!
//! The `repro` binary drives all of it; the Criterion benches under
//! `benches/` cover wall-clock measurements per experiment.

pub mod experiments;
pub mod figures;
pub mod tables;
pub mod workload;

/// Builds a pointer-seal payload for the cipher microbenches (E7).
pub fn seal_payload_for_bench(block: u32, a: u64, p: u32) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&block.to_be_bytes());
    out[4..12].copy_from_slice(&a.to_be_bytes());
    out[12..16].copy_from_slice(&p.to_be_bytes());
    out
}
