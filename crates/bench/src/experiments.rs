//! The quantitative experiments E1–E8 (see DESIGN.md §4).
//!
//! The paper has no measured evaluation; each experiment operationalises one
//! of its comparative *claims* and prints the table the authors would have.
//! Counts come from the shared [`sks_storage::OpCounters`]; wall-clock is
//! secondary (the Criterion benches cover it properly).

use std::time::Instant;

use sks_attack::{AttackReport, DiskImage, FormatKnowledge};
use sks_core::{layouts_at, Scheme, SchemeConfig, SchemeLayout, SealerKind};
use sks_storage::OpSnapshot;

use crate::workload::{build_tree, ground_truth, lookup_keys};

/// One measured row of E1/E2.
#[derive(Debug, Clone)]
pub struct SearchCostRow {
    pub scheme: Scheme,
    pub block_size: usize,
    pub fanout: usize,
    pub height: u32,
    pub lookups: usize,
    /// Triplet/seal-unit decryptions per lookup (key + ptr classes).
    pub seal_decrypts_per_lookup: f64,
    /// Cipher-block operations per lookup for whole-page schemes.
    pub page_blocks_per_lookup: f64,
    /// Key comparisons per lookup.
    pub compares_per_lookup: f64,
    pub nanos_per_lookup: f64,
}

fn search_cost_for(scheme: Scheme, n_keys: u64, block_size: usize) -> SearchCostRow {
    let tree = build_tree(scheme, n_keys, block_size, 11);
    let queries = lookup_keys(scheme, n_keys, 400, 17);
    tree.counters().reset();
    let start = Instant::now();
    for &q in &queries {
        let _ = tree.get_pointer(q).expect("lookup");
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let s: OpSnapshot = tree.snapshot();
    let l = queries.len() as f64;
    SearchCostRow {
        scheme,
        block_size,
        fanout: tree.max_keys_per_node(),
        height: tree.height(),
        lookups: queries.len(),
        seal_decrypts_per_lookup: (s.key_decrypts + s.ptr_decrypts) as f64 / l,
        page_blocks_per_lookup: s.page_decrypts as f64 / l,
        compares_per_lookup: s.key_compares as f64 / l,
        nanos_per_lookup: elapsed / l,
    }
}

/// E1 — decryptions per search: 1 (substitution) vs `log₂ n`
/// (search-and-decrypt) vs whole page (§3/§6).
pub fn e1_decryptions(n_keys: u64, block_sizes: &[usize]) -> (String, Vec<SearchCostRow>) {
    let schemes = [
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
        Scheme::Plaintext,
    ];
    let mut rows = Vec::new();
    let mut out = String::new();
    out.push_str(&format!(
        "E1  Decryptions per point lookup ({n_keys} keys; seal units, page schemes in cipher blocks)\n\n"
    ));
    out.push_str(&format!(
        "    {:<18} {:>6} {:>7} {:>7} {:>12} {:>12} {:>10}\n",
        "scheme", "page", "fanout", "height", "seal-dec/op", "pageblk/op", "cmp/op"
    ));
    for &bs in block_sizes {
        for &scheme in &schemes {
            let row = search_cost_for(scheme, n_keys, bs);
            out.push_str(&format!(
                "    {:<18} {:>6} {:>7} {:>7} {:>12.2} {:>12.1} {:>10.1}\n",
                scheme.name(),
                bs,
                row.fanout,
                row.height,
                row.seal_decrypts_per_lookup,
                row.page_blocks_per_lookup,
                row.compares_per_lookup,
            ));
            rows.push(row);
        }
        out.push('\n');
    }
    out.push_str("    claim check: substitution ≈ height (1/node), BM ≈ height·log2(fanout), page ≈ height·page/8\n");
    (out, rows)
}

/// E2 — wall-clock search throughput (the cheap in-process version; the
/// Criterion bench `search_throughput` is authoritative).
pub fn e2_throughput(n_keys: u64, block_size: usize) -> (String, Vec<SearchCostRow>) {
    let schemes = [
        Scheme::Plaintext,
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::Exponentiation,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "E2  Lookup latency ({n_keys} keys, {block_size}-byte pages, DES pointer cipher)\n\n"
    ));
    out.push_str(&format!(
        "    {:<18} {:>10} {:>14}\n",
        "scheme", "ns/lookup", "vs plaintext"
    ));
    let mut rows = Vec::new();
    let mut base = None;
    for &scheme in &schemes {
        let row = search_cost_for(scheme, n_keys, block_size);
        if scheme == Scheme::Plaintext {
            base = Some(row.nanos_per_lookup);
        }
        let rel = row.nanos_per_lookup / base.unwrap_or(row.nanos_per_lookup);
        out.push_str(&format!(
            "    {:<18} {:>10.0} {:>13.1}x\n",
            scheme.name(),
            row.nanos_per_lookup,
            rel
        ));
        rows.push(row);
    }
    (out, rows)
}

/// E3 — node layout: bytes/triplet, fanout, expected depth (§4.2's storage
/// claim), including RSA-sized key cryptograms.
pub fn e3_layout(page_size: usize) -> (String, Vec<SchemeLayout>) {
    let mut layouts = layouts_at(page_size).expect("layouts");
    // Add RSA-sealed substitution variants (the §4.2 "encrypted search keys
    // consume large storage" contrast).
    for bits in [256usize, 512, 1024] {
        let mut cfg = SchemeConfig::demo(Scheme::Oval);
        cfg.block_size = page_size;
        cfg.sealer = SealerKind::Rsa(bits);
        layouts.push(SchemeLayout::for_config(&cfg).expect("rsa layout"));
    }
    let mut out = String::new();
    out.push_str(&format!(
        "E3  Node layout at {page_size}-byte pages (heights for R = 10^6 records)\n\n"
    ));
    out.push_str(&format!(
        "    {:<22} {:>9} {:>9} {:>8} {:>10} {:>12} {:>12}\n",
        "scheme/sealer", "key B", "seal B", "fanout", "bytes/key", "height best", "height worst"
    ));
    for (i, l) in layouts.iter().enumerate() {
        let label = if i >= 6 {
            format!("oval + rsa-{}", l.seal_bytes * 8)
        } else {
            l.scheme.name().to_string()
        };
        out.push_str(&format!(
            "    {:<22} {:>9} {:>9} {:>8} {:>10.1} {:>12} {:>12}\n",
            label,
            l.key_field_bytes,
            l.seal_bytes,
            l.max_keys,
            l.bytes_per_key(),
            l.best_case_height(1_000_000),
            l.worst_case_height(1_000_000),
        ));
    }
    (out, layouts)
}

/// One row of the E4 reorganisation-cost table.
#[derive(Debug, Clone)]
pub struct ReorgRow {
    pub scheme: Scheme,
    pub churn_ops: usize,
    pub key_encrypts: u64,
    pub ptr_encrypts: u64,
    pub page_encrypt_blocks: u64,
    pub disguise_ops: u64,
    pub splits: u64,
    pub merges: u64,
}

/// E4 — re-encipherment cost of inserts/deletes: §3's "static search keys"
/// argument. Counts *key* encryptions (BM pays them, substitution never
/// does) across a random churn.
pub fn e4_reorg(n_keys: u64, churn: usize, block_size: usize) -> (String, Vec<ReorgRow>) {
    let schemes = [
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
        Scheme::Plaintext,
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "E4  Re-encipherment under churn ({churn} delete+reinsert pairs over {n_keys} keys)\n\n"
    ));
    out.push_str(&format!(
        "    {:<18} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7}\n",
        "scheme", "key-enc", "ptr-enc", "page-blk", "disguise", "splits", "merges"
    ));
    let mut rows = Vec::new();
    for &scheme in &schemes {
        let mut tree = build_tree(scheme, n_keys, block_size, 23);
        let victims = lookup_keys(scheme, n_keys, churn, 29);
        tree.counters().reset();
        for &k in &victims {
            let old = tree.delete(k).expect("churn delete");
            if let Some(rec) = old {
                tree.insert(k, rec).expect("churn reinsert");
            }
        }
        let s = tree.snapshot();
        out.push_str(&format!(
            "    {:<18} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7}\n",
            scheme.name(),
            s.key_encrypts,
            s.ptr_encrypts,
            s.page_encrypts,
            s.disguise_ops,
            s.splits,
            s.merges
        ));
        rows.push(ReorgRow {
            scheme,
            churn_ops: churn,
            key_encrypts: s.key_encrypts,
            ptr_encrypts: s.ptr_encrypts,
            page_encrypt_blocks: s.page_encrypts,
            disguise_ops: s.disguise_ops,
            splits: s.splits,
            merges: s.merges,
        });
    }
    out.push_str("\n    claim check: substitution schemes show key-enc = 0 (keys re-disguised, never re-encrypted)\n");
    (out, rows)
}

/// E5 — the opponent's shape reconstruction per scheme (§4.1/§6).
pub fn e5_shape_security(n_keys: u64, block_size: usize) -> (String, Vec<AttackReport>) {
    let schemes = [
        Scheme::Plaintext,
        Scheme::SumOfTreatments,
        Scheme::Oval,
        Scheme::Exponentiation,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "E5  Shape reconstruction by the opponent ({n_keys} keys, raw disk image)\n\n    {}\n",
        AttackReport::header()
    ));
    let mut reports = Vec::new();
    for &scheme in &schemes {
        let tree = build_tree(scheme, n_keys, block_size, 31);
        let truth = ground_truth(&tree);
        let image = DiskImage::new(block_size, tree.raw_node_image().expect("raw image"));
        let report = AttackReport::run(scheme.name(), &image, &FormatKnowledge::default(), &truth);
        out.push_str(&format!("    {}\n", report.row()));
        reports.push(report);
    }
    out.push_str("\n    claim check: recall ≈ 1 for plaintext/order-preserving, ≈ 0 for oval/exp and both BM baselines;\n");
    out.push_str("    |tau| ≈ 1 shows the §4.3 trade-off (order deliberately preserved)\n");
    (out, reports)
}

/// One row of the E6 range-scan table.
#[derive(Debug, Clone)]
pub struct RangeRow {
    pub scheme: Scheme,
    pub width: u64,
    pub results: usize,
    pub nanos: f64,
    pub seal_decrypts: u64,
}

/// E6 — range queries stay possible (§1 motivation, §4.3): correctness and
/// cost of scans of increasing width.
pub fn e6_ranges(n_keys: u64, block_size: usize) -> (String, Vec<RangeRow>) {
    let schemes = [
        Scheme::Plaintext,
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::BayerMetzger,
    ];
    let widths = [10u64, 100, 1000];
    let mut out = String::new();
    out.push_str(&format!("E6  Range scans over {n_keys} keys\n\n"));
    out.push_str(&format!(
        "    {:<18} {:>7} {:>8} {:>12} {:>12}\n",
        "scheme", "width", "rows", "seal-dec", "us/scan"
    ));
    let mut rows = Vec::new();
    for &scheme in &schemes {
        let tree = build_tree(scheme, n_keys, block_size, 37);
        for &w in &widths {
            let lo = n_keys / 3;
            let hi = lo + w - 1;
            tree.counters().reset();
            let start = Instant::now();
            let result = tree.range(lo, hi).expect("range scan");
            let nanos = start.elapsed().as_nanos() as f64;
            // Every stored key in [lo, hi] must come back, in order.
            assert!(result.windows(2).all(|p| p[0].0 < p[1].0));
            let s = tree.snapshot();
            out.push_str(&format!(
                "    {:<18} {:>7} {:>8} {:>12} {:>12.1}\n",
                scheme.name(),
                w,
                result.len(),
                s.key_decrypts + s.ptr_decrypts,
                nanos / 1000.0
            ));
            rows.push(RangeRow {
                scheme,
                width: w,
                results: result.len(),
                nanos,
                seal_decrypts: s.key_decrypts + s.ptr_decrypts,
            });
        }
    }
    (out, rows)
}

/// E7 — pointer-cipher microbenchmark: DES vs Speck vs secret-parameter RSA
/// (§5's cipher discussion).
pub fn e7_pointer_ciphers() -> (String, Vec<(String, f64, usize)>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sks_core::codec::{BlockCipherSealer, RsaSealer, TripletSealer};
    use sks_crypto::rsa::RsaKey;

    let mut rng = StdRng::seed_from_u64(41);
    let sealers: Vec<(String, Box<dyn TripletSealer>)> = vec![
        (
            "des".into(),
            Box::new(BlockCipherSealer::des(0x0123456789ABCDEF)),
        ),
        (
            "speck".into(),
            Box::new(BlockCipherSealer::speck(
                0x0011223344556677_8899AABBCCDDEEFF,
            )),
        ),
        (
            "rsa-256".into(),
            Box::new(RsaSealer::new(RsaKey::generate(&mut rng, 256)).unwrap()),
        ),
        (
            "rsa-512".into(),
            Box::new(RsaSealer::new(RsaKey::generate(&mut rng, 512)).unwrap()),
        ),
    ];
    let payload = crate::seal_payload_for_bench(7, 0xAABB, 3);
    let mut out = String::new();
    out.push_str("E7  Pointer seal/unseal cost (§5: DES vs secret-parameter RSA)\n\n");
    out.push_str(&format!(
        "    {:<10} {:>12} {:>14}\n",
        "cipher", "ct bytes", "us/roundtrip"
    ));
    let mut rows = Vec::new();
    for (name, sealer) in &sealers {
        let iters = if name.starts_with("rsa") { 20 } else { 2000 };
        let start = Instant::now();
        for _ in 0..iters {
            let ct = sealer.seal(&payload);
            let _ = sealer.unseal(&ct).expect("roundtrip");
        }
        let us = start.elapsed().as_micros() as f64 / iters as f64;
        out.push_str(&format!(
            "    {:<10} {:>12} {:>14.2}\n",
            name,
            sealer.sealed_len(),
            us
        ));
        rows.push((name.clone(), us, sealer.sealed_len()));
    }
    (out, rows)
}

/// E8 — secret material per scheme (§4.1/§6's "small amount of information
/// that needs to be kept secret") vs the conversion-table strawman.
pub fn e8_secret_material(capacities: &[u64]) -> (String, Vec<(String, u64, usize)>) {
    let mut out = String::new();
    out.push_str("E8  Secret material to carry (bytes; smartcard-sized vs table-sized)\n\n");
    out.push_str(&format!(
        "    {:<22} {:>12} {:>14}\n",
        "scheme", "R (records)", "secret bytes"
    ));
    let mut rows = Vec::new();
    for &r in capacities {
        for scheme in [
            Scheme::Oval,
            Scheme::Exponentiation,
            Scheme::SumOfTreatments,
            Scheme::ConversionTable,
        ] {
            let cfg = SchemeConfig::with_capacity(scheme, r);
            let counters = sks_storage::OpCounters::new();
            let disguise = cfg
                .build_disguise(&counters)
                .expect("build")
                .expect("substitution scheme");
            let bytes = disguise.secret_size_bytes();
            out.push_str(&format!(
                "    {:<22} {:>12} {:>14}\n",
                scheme.name(),
                r,
                bytes
            ));
            rows.push((scheme.name().to_string(), r, bytes));
        }
        out.push('\n');
    }
    out.push_str("    claim check: design-based schemes stay O(k) (fits the paper's smartcard);\n");
    out.push_str("    the conversion table grows linearly with R\n");
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_substitution_beats_bm_on_decrypt_counts() {
        let (_, rows) = e1_decryptions(800, &[1024]);
        let get = |s: Scheme| rows.iter().find(|r| r.scheme == s).unwrap();
        let oval = get(Scheme::Oval);
        let bm = get(Scheme::BayerMetzger);
        let page = get(Scheme::BayerMetzgerPage);
        // One seal per node visit ⇒ ≈ height.
        assert!(
            (oval.seal_decrypts_per_lookup - oval.height as f64).abs() <= 0.5,
            "oval {} vs height {}",
            oval.seal_decrypts_per_lookup,
            oval.height
        );
        assert!(bm.seal_decrypts_per_lookup > oval.seal_decrypts_per_lookup);
        assert!(page.page_blocks_per_lookup > bm.seal_decrypts_per_lookup);
    }

    #[test]
    fn e3_rsa_layouts_have_tiny_fanout() {
        let (_, layouts) = e3_layout(4096);
        let rsa1024 = layouts.last().unwrap();
        assert_eq!(rsa1024.seal_bytes, 128);
        let des_oval = layouts.iter().find(|l| l.scheme == Scheme::Oval).unwrap();
        assert!(rsa1024.max_keys * 3 < des_oval.max_keys);
    }

    #[test]
    fn e4_substitution_never_reencrypts_keys() {
        let (_, rows) = e4_reorg(600, 80, 512);
        let oval = rows.iter().find(|r| r.scheme == Scheme::Oval).unwrap();
        let bm = rows
            .iter()
            .find(|r| r.scheme == Scheme::BayerMetzger)
            .unwrap();
        assert_eq!(oval.key_encrypts, 0);
        assert!(bm.key_encrypts > 0);
        assert!(oval.disguise_ops > 0, "keys are re-disguised instead");
    }

    #[test]
    fn e5_oval_hides_shape_sum_reveals_it() {
        let (_, reports) = e5_shape_security(150, 512);
        let find = |n: &str| reports.iter().find(|r| r.scheme == n).unwrap();
        let plain = find("plaintext");
        let sum = find("sum-of-treatments");
        let oval = find("oval");
        let bm = find("bayer-metzger");
        assert!(
            plain.shape.recall > 0.6,
            "plaintext recall {}",
            plain.shape.recall
        );
        assert!(sum.shape.recall > 0.6, "sum recall {}", sum.shape.recall);
        assert!(
            oval.shape.recall < 0.35,
            "oval must hide shape: {}",
            oval.shape.recall
        );
        assert_eq!(
            bm.shape.inferred, 0,
            "sealed nodes give the attacker nothing"
        );
        // Order leakage mirrors the same story.
        assert!(sum.order_leakage.unwrap() > 0.99);
        assert!(oval.order_leakage.unwrap().abs() < 0.35);
    }

    #[test]
    fn e6_all_schemes_agree_on_range_contents() {
        let (_, rows) = e6_ranges(600, 512);
        for w in [10u64, 100, 1000] {
            let counts: std::collections::HashSet<usize> = rows
                .iter()
                .filter(|r| r.width == w)
                .map(|r| r.results)
                .collect();
            assert_eq!(counts.len(), 1, "schemes disagree at width {w}: {counts:?}");
        }
    }

    #[test]
    fn e7_rsa_dwarfs_des() {
        let (_, rows) = e7_pointer_ciphers();
        let des = rows.iter().find(|(n, _, _)| n == "des").unwrap();
        let rsa = rows.iter().find(|(n, _, _)| n == "rsa-512").unwrap();
        assert!(rsa.1 > des.1, "RSA {}us vs DES {}us", rsa.1, des.1);
        assert!(rsa.2 > des.2, "RSA cryptograms are wider");
    }

    #[test]
    fn e8_table_grows_design_does_not() {
        let (_, rows) = e8_secret_material(&[1_000, 10_000]);
        let table_1k = rows
            .iter()
            .find(|(n, r, _)| n == "conversion-table" && *r == 1_000)
            .unwrap()
            .2;
        let table_10k = rows
            .iter()
            .find(|(n, r, _)| n == "conversion-table" && *r == 10_000)
            .unwrap()
            .2;
        assert!(table_10k >= table_1k * 9);
        let oval_1k = rows
            .iter()
            .find(|(n, r, _)| n == "oval" && *r == 1_000)
            .unwrap()
            .2;
        let oval_10k = rows
            .iter()
            .find(|(n, r, _)| n == "oval" && *r == 10_000)
            .unwrap()
            .2;
        // Design secret grows with k ≈ sqrt(v) only.
        assert!(oval_10k < oval_1k * 4);
        assert!(oval_10k < table_10k / 10);
    }
}
