//! `repro` — regenerates every table, figure and experiment of the
//! reproduction.
//!
//! ```text
//! repro --all                  everything (tables, figures, E1–E8)
//! repro --tables               T1 T2 T3
//! repro --figures              F1 F2 F3 (+ the plaintext reference)
//! repro --table t1|t2|t3
//! repro --figure f1|f2|f3
//! repro --exp e1|e2|…|e8       one experiment
//! repro --quick                tables + figures + fast experiments
//! ```

use sks_bench::{experiments, figures, tables};

fn print_table(which: &str) {
    match which {
        "t1" => println!("{}", tables::table_t1()),
        "t2" => println!("{}", tables::table_t2()),
        "t3" => println!("{}", tables::table_t3()),
        other => eprintln!("unknown table {other} (expected t1|t2|t3)"),
    }
}

fn print_figure(which: &str) {
    match which {
        "f1" => println!("{}", figures::figure_f1()),
        "f2" => println!("{}", figures::figure_f2()),
        "f3" => println!("{}", figures::figure_f3()),
        other => eprintln!("unknown figure {other} (expected f1|f2|f3)"),
    }
}

fn run_experiment(which: &str, quick: bool) {
    let (n_small, n_mid) = if quick { (400, 800) } else { (2_000, 5_000) };
    match which {
        "e1" => println!(
            "{}",
            experiments::e1_decryptions(n_mid as u64, &[512, 1024, 4096]).0
        ),
        "e2" => println!("{}", experiments::e2_throughput(n_mid as u64, 1024).0),
        "e3" => println!("{}", experiments::e3_layout(4096).0),
        "e4" => println!(
            "{}",
            experiments::e4_reorg(n_small as u64, if quick { 100 } else { 500 }, 512).0
        ),
        "e5" => println!("{}", experiments::e5_shape_security(150, 512).0),
        "e6" => println!("{}", experiments::e6_ranges(n_mid as u64, 1024).0),
        "e7" => println!("{}", experiments::e7_pointer_ciphers().0),
        "e8" => println!(
            "{}",
            experiments::e8_secret_material(&[1_000, 10_000, 100_000]).0
        ),
        other => eprintln!("unknown experiment {other} (expected e1..e8)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let mut did_anything = false;
    let quick = args.iter().any(|a| a == "--quick");
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" | "--quick" => {
                println!("=== Paper tables ===\n");
                for t in ["t1", "t2", "t3"] {
                    print_table(t);
                }
                println!("=== Paper figures ===\n");
                println!("{}", figures::all_figures());
                println!("=== Experiments ===\n");
                for e in ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"] {
                    run_experiment(e, quick || arg == "--quick");
                }
                did_anything = true;
            }
            "--tables" => {
                for t in ["t1", "t2", "t3"] {
                    print_table(t);
                }
                did_anything = true;
            }
            "--figures" => {
                println!("{}", figures::all_figures());
                did_anything = true;
            }
            "--table" => {
                if let Some(t) = it.next() {
                    print_table(t);
                    did_anything = true;
                }
            }
            "--figure" => {
                if let Some(f) = it.next() {
                    print_figure(f);
                    did_anything = true;
                }
            }
            "--exp" => {
                if let Some(e) = it.next() {
                    run_experiment(e, quick);
                    did_anything = true;
                }
            }
            other => {
                eprintln!("unknown argument {other}");
            }
        }
    }
    if !did_anything {
        eprintln!(
            "usage: repro [--all | --quick | --tables | --figures | --table tN | --figure fN | --exp eN]"
        );
        std::process::exit(2);
    }
}
