//! `bench_report` — emits a `BENCH_*.json` snapshot of the headline
//! performance numbers so the trajectory is tracked per PR:
//!
//! * **insert throughput** (engine, memory + file backend, group commit),
//! * **recovery time** (full replay vs checkpointed tail replay),
//! * **read-hot point reads** (plaintext node cache off vs on, file
//!   backend) with the measured speedup.
//!
//! ```text
//! bench_report [OUTPUT.json]        default: BENCH_current.json
//! ```
//!
//! Numbers are medians of several short timed runs — stable enough to
//! trend, cheap enough for CI.

use std::time::Instant;

use sks_core::{EncipheredBTree, Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, RecoveryPath, SksDb};
use sks_storage::SyncPolicy;

const KEY_SPACE: u64 = 8_192;
const INSERTS: u64 = 2_000;
const DATASET: u64 = 2_000;
const TAIL: u64 = 64;
const HOT_SET: u64 = 512;
const HOT_PROBES: u64 = 20_000;
const RUNS: usize = 5;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sks_bench_report_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn record_for(k: u64) -> Vec<u8> {
    format!("bench-report-record-{k:08}").into_bytes()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    xs[xs.len() / 2]
}

fn engine_config(dir: &std::path::Path, file_backend: bool) -> EngineConfig {
    let mut scheme = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 64).partitions(4);
    if file_backend {
        scheme = scheme.backend(StorageBackend::File {
            dir: dir.to_path_buf(),
            pool_pages: 128,
        });
    }
    EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32))
}

/// Inserts/second on a fresh engine (median over RUNS).
fn insert_throughput(file_backend: bool) -> f64 {
    let label = if file_backend { "ins_file" } else { "ins_mem" };
    let mut per_run = Vec::with_capacity(RUNS);
    for run in 0..RUNS {
        let dir = tmpdir(&format!("{label}_{run}"));
        let db = SksDb::open(&dir, engine_config(&dir, file_backend)).expect("open");
        let session = db.session();
        let start = Instant::now();
        for k in 0..INSERTS {
            session.insert(k, record_for(k)).expect("insert");
        }
        let secs = start.elapsed().as_secs_f64();
        per_run.push(INSERTS as f64 / secs);
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    median(per_run)
}

/// Reopen latency in milliseconds (median over RUNS) after DATASET
/// records, a checkpoint, and a TAIL-record tail.
fn recovery_ms(file_backend: bool) -> f64 {
    let label = if file_backend { "rec_file" } else { "rec_mem" };
    let dir = tmpdir(label);
    let cfg = engine_config(&dir, file_backend);
    {
        let db = SksDb::open(&dir, cfg.clone()).expect("open");
        let session = db.session();
        for k in 0..DATASET {
            session.insert(k, record_for(k)).expect("prefill");
        }
        db.checkpoint().expect("checkpoint");
        for k in 0..TAIL {
            session.insert(k, record_for(k)).expect("tail");
        }
    }
    let mut per_run = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let db = SksDb::open(&dir, cfg.clone()).expect("reopen");
        per_run.push(start.elapsed().as_secs_f64() * 1e3);
        let want = if file_backend {
            RecoveryPath::TailReplay
        } else {
            RecoveryPath::FullReplay
        };
        assert_eq!(db.recovery_report().path, want);
        assert_eq!(db.len(), DATASET);
    }
    std::fs::remove_dir_all(&dir).ok();
    median(per_run)
}

/// Nanoseconds per re-probe-heavy point read on the file backend
/// (median over RUNS), node cache off or on.
fn read_hot_ns(node_cache: usize) -> f64 {
    let dir = tmpdir(&format!("hot_{node_cache}"));
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 2)
        .on_disk(&dir)
        .node_cache(node_cache);
    let items: Vec<(u64, Vec<u8>)> = (0..KEY_SPACE).map(|k| (k, record_for(k))).collect();
    let mut tree = EncipheredBTree::bulk_create(cfg, &items).expect("bulk create");
    tree.flush().expect("checkpoint");
    // Warm buffer pool and node cache to the steady re-probe state.
    for k in 0..HOT_SET {
        assert!(tree.get_pointer(k * 7 % KEY_SPACE).unwrap().is_some());
    }
    let mut per_run = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        for i in 0..HOT_PROBES {
            let k = (i % HOT_SET) * 7 % KEY_SPACE;
            std::hint::black_box(tree.get_pointer(std::hint::black_box(k)).unwrap());
        }
        per_run.push(start.elapsed().as_secs_f64() * 1e9 / HOT_PROBES as f64);
    }
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
    median(per_run)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_current.json".into());

    eprintln!("bench_report: insert throughput…");
    let ins_mem = insert_throughput(false);
    let ins_file = insert_throughput(true);
    eprintln!("bench_report: recovery…");
    let rec_mem = recovery_ms(false);
    let rec_file = recovery_ms(true);
    eprintln!("bench_report: read-hot…");
    let hot_off = read_hot_ns(0);
    let hot_on = read_hot_ns(4_096);
    let speedup = hot_off / hot_on;

    let json = format!(
        r#"{{
  "suite": "sks-btree perf trajectory",
  "config": {{
    "scheme": "oval",
    "partitions": 4,
    "sync": "group-commit-32",
    "inserts": {INSERTS},
    "recovery_dataset": {DATASET},
    "recovery_tail": {TAIL},
    "read_hot_set": {HOT_SET}
  }},
  "insert_throughput_ops_per_s": {{
    "memory_backend": {ins_mem:.1},
    "file_backend": {ins_file:.1}
  }},
  "recovery_ms": {{
    "memory_full_replay": {rec_mem:.2},
    "file_tail_replay": {rec_file:.2}
  }},
  "read_hot_ns_per_op": {{
    "file_cache_off": {hot_off:.1},
    "file_cache_on": {hot_on:.1},
    "cache_speedup": {speedup:.2}
  }}
}}
"#
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("bench_report: wrote {out_path}");
    assert!(
        speedup >= 2.0,
        "read-hot cache speedup regressed below 2x: {speedup:.2}"
    );
}
