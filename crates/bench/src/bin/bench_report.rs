//! `bench_report` — emits a `BENCH_*.json` snapshot of the headline
//! performance numbers so the trajectory is tracked per PR:
//!
//! * **insert throughput** (engine, memory + file backend, batch-sealed
//!   group commits + write-behind node re-sealing),
//! * **bulk-load throughput** (sorted ingest through `SksDb::bulk_load`,
//!   file backend),
//! * **recovery time** (full replay vs checkpointed tail replay) and
//!   full-replay throughput through the batched replay path,
//! * **checkpoint at 1% dirty** (50k-record file backend: delta-encoded
//!   index persistence vs the full-rewrite path, with the index bytes
//!   written per epoch),
//! * **read-hot point reads** (plaintext node cache off vs on, file
//!   backend) with the measured speedup,
//! * **range scans** (streamed, node cache off vs on),
//! * **record-cache reads** (decoded-record LRU off vs on),
//! * **compaction** (delete-heavy churn: blocks reclaimed and pass time),
//! * **per-op latency** (insert/get p50 and p99 from the engine's
//!   histogram stats surface, `ObsLevel::Histograms`),
//! * **transaction commits** (explicit multi-key cross-partition
//!   `Txn::commit` throughput plus its p50/p99 from the engine's `txn`
//!   histogram — each commit is one atomic WAL txn frame, fsynced before
//!   the trees apply).
//!
//! ```text
//! bench_report [OUTPUT.json] [--baseline BASELINE.json]
//! bench_report --obs-overhead
//! ```
//!
//! `--obs-overhead` runs only the observability smoke: insert throughput
//! at `ObsLevel::Off` vs `FullTrace` must stay within 10%.
//!
//! With `--baseline`, the run doubles as the CI perf-regression gate: it
//! exits non-zero when insert throughput or the cache speedups fall below
//! half the committed baseline, or recovery time more than doubles.
//!
//! Numbers are medians of several short timed runs — stable enough to
//! trend, cheap enough for CI.

use std::time::Instant;

use sks_core::{EncipheredBTree, ObsLevel, Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, RecoveryPath, SksDb};
use sks_storage::SyncPolicy;

const KEY_SPACE: u64 = 8_192;
const INSERTS: u64 = 2_000;
const DATASET: u64 = 20_000;
const TAIL: u64 = 64;
const CKPT_RECORDS: u64 = 50_000;
const CKPT_DIRTY: u64 = 500;
const HOT_SET: u64 = 512;
const HOT_PROBES: u64 = 20_000;
const RANGE_WIDTH: u64 = 1_024;
const RANGE_SCANS: u64 = 200;
const RECORD_GETS: u64 = 20_000;
const CHURN_KEYS: u64 = 4_096;
const TXN_COMMITS: u64 = 500;
const TXN_KEYS: u64 = 4;
const RUNS: usize = 5;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sks_bench_report_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn record_for(k: u64) -> Vec<u8> {
    format!("bench-report-record-{k:08}").into_bytes()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    xs[xs.len() / 2]
}

fn engine_config(dir: &std::path::Path, file_backend: bool) -> EngineConfig {
    engine_config_at(dir, file_backend, ObsLevel::Counters)
}

fn engine_config_at(dir: &std::path::Path, file_backend: bool, level: ObsLevel) -> EngineConfig {
    // The pipelined write path: batch sealing + the double-buffered log
    // writer are default-on; write-behind node re-sealing is the opt-in
    // ingest posture (logical counters stay byte-identical either way —
    // `write_pipeline_preserves_logical_counters_exactly` pins that).
    let mut scheme = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 64)
        .partitions(4)
        .write_behind(64)
        .observability(level);
    if file_backend {
        scheme = scheme.backend(StorageBackend::File {
            dir: dir.to_path_buf(),
            pool_pages: 128,
        });
    }
    EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32))
}

/// Inserts/second on a fresh engine (median over RUNS).
fn insert_throughput(file_backend: bool) -> f64 {
    insert_throughput_at(file_backend, ObsLevel::Counters)
}

fn insert_throughput_at(file_backend: bool, level: ObsLevel) -> f64 {
    let label = if file_backend { "ins_file" } else { "ins_mem" };
    let mut per_run = Vec::with_capacity(RUNS);
    for run in 0..RUNS {
        let dir = tmpdir(&format!("{label}_{}_{run}", level.name()));
        let db = SksDb::open(&dir, engine_config_at(&dir, file_backend, level)).expect("open");
        let session = db.session();
        let start = Instant::now();
        for k in 0..INSERTS {
            session.insert(k, record_for(k)).expect("insert");
        }
        let secs = start.elapsed().as_secs_f64();
        per_run.push(INSERTS as f64 / secs);
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    median(per_run)
}

/// Sorted-ingest throughput through [`SksDb::bulk_load`] — one group
/// commit per partition, bottom-up tree build — on the file backend
/// (median over RUNS).
fn bulk_load_throughput() -> f64 {
    let mut per_run = Vec::with_capacity(RUNS);
    for run in 0..RUNS {
        let dir = tmpdir(&format!("bulk_{run}"));
        let db = SksDb::open(&dir, engine_config(&dir, true)).expect("open");
        let items: Vec<(u64, Vec<u8>)> = (0..INSERTS).map(|k| (k, record_for(k))).collect();
        let start = Instant::now();
        db.bulk_load(items).expect("bulk load");
        per_run.push(INSERTS as f64 / start.elapsed().as_secs_f64());
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    median(per_run)
}

/// Per-op latency quantiles from the engine's own histogram surface
/// (`ObsLevel::Histograms`, memory backend): `(insert_p50, insert_p99,
/// get_p50, get_p99)` in nanoseconds.
fn op_latency_ns() -> (u64, u64, u64, u64) {
    let dir = tmpdir("op_latency");
    let db = SksDb::open(&dir, engine_config_at(&dir, false, ObsLevel::Histograms)).expect("open");
    let session = db.session();
    for k in 0..INSERTS {
        session.insert(k, record_for(k)).expect("insert");
    }
    for i in 0..HOT_PROBES / 2 {
        let k = (i % HOT_SET) * 7 % INSERTS;
        std::hint::black_box(session.get(std::hint::black_box(k)).expect("get"));
    }
    let stats = db.stats();
    let put = stats.op("put").expect("put histogram").clone();
    let get = stats.op("get").expect("get histogram").clone();
    drop(session);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    (put.p50(), put.p99(), get.p50(), get.p99())
}

/// Explicit multi-key transaction commits per second, with the commit's
/// p50/p99 from the engine's own `txn` histogram (memory backend,
/// `ObsLevel::Histograms`): TXN_COMMITS transactions of TXN_KEYS
/// overwrites each — consecutive keys, so the disguised-key router
/// spreads most commits across partitions and the measured path is the
/// cross-partition one (one txn frame, durable before the trees apply).
/// Returns `(ops_per_s, p50_ns, p99_ns)`.
fn txn_commit_metrics() -> (f64, u64, u64) {
    let mut per_run = Vec::with_capacity(RUNS);
    let mut quantiles = (0u64, 0u64);
    for run in 0..RUNS {
        let dir = tmpdir(&format!("txn_{run}"));
        let db =
            SksDb::open(&dir, engine_config_at(&dir, false, ObsLevel::Histograms)).expect("open");
        let session = db.session();
        for k in 0..INSERTS {
            session.insert(k, record_for(k)).expect("seed");
        }
        let start = Instant::now();
        for i in 0..TXN_COMMITS {
            let mut txn = session.begin();
            for j in 0..TXN_KEYS {
                let k = (i * TXN_KEYS + j) % INSERTS;
                txn.insert(k, record_for(k + 1)).expect("buffer");
            }
            txn.commit().expect("commit");
        }
        per_run.push(TXN_COMMITS as f64 / start.elapsed().as_secs_f64());
        let stats = db.stats();
        let txn = stats.op("txn").expect("txn histogram");
        quantiles = (txn.p50(), txn.p99());
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    (median(per_run), quantiles.0, quantiles.1)
}

/// The `--obs-overhead` smoke: full tracing may cost at most 10% of the
/// `Off` insert throughput. Returns `(off_ops_s, full_trace_ops_s)`.
fn obs_overhead() -> (f64, f64) {
    let off = insert_throughput_at(false, ObsLevel::Off);
    let full = insert_throughput_at(false, ObsLevel::FullTrace);
    (off, full)
}

/// Inserts/second through a checkpoint-heavy workload (a checkpoint
/// every 500 inserts, memory backend) — the maintenance-path companion
/// to the plain obs-overhead smoke, covering the incremental-checkpoint
/// and index-flush stages under tracing.
fn checkpoint_heavy_throughput_at(level: ObsLevel) -> f64 {
    let mut per_run = Vec::with_capacity(RUNS);
    for run in 0..RUNS {
        let dir = tmpdir(&format!("ckpt_obs_{}_{run}", level.name()));
        let db = SksDb::open(&dir, engine_config_at(&dir, false, level)).expect("open");
        let session = db.session();
        let start = Instant::now();
        for k in 0..INSERTS {
            session.insert(k, record_for(k)).expect("insert");
            if k % 500 == 499 {
                db.checkpoint().expect("checkpoint");
            }
        }
        per_run.push(INSERTS as f64 / start.elapsed().as_secs_f64());
        drop(session);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    median(per_run)
}

/// Checkpoint wall time in milliseconds at a CKPT_RECORDS-record file
/// backend with ~1% of its blocks dirtied since the last epoch (median
/// over RUNS) — plus the index bytes per persisted epoch observed during
/// the timed checkpoint.
///
/// `proportional = true` measures the change-proportional maintenance
/// defaults: delta-encoded index persistence plus the dead-ratio
/// compaction floor. `false` reproduces the previous full-rewrite path —
/// the whole reverse-index chain re-persisted every epoch and any block
/// with a single dead record a compaction victim — so the pair is a
/// faithful before/after of the same workload.
fn checkpoint_ms(proportional: bool) -> (f64, f64) {
    let mut per_run = Vec::with_capacity(RUNS);
    let mut bytes_per_epoch = 0.0;
    for run in 0..RUNS {
        let dir = tmpdir(&format!("ckpt_{proportional}_{run}"));
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, CKPT_RECORDS + 64)
            .partitions(4)
            .index_delta(proportional)
            .compaction_floor(if proportional {
                SchemeConfig::DEFAULT_COMPACTION_FLOOR
            } else {
                0
            })
            .backend(StorageBackend::File {
                dir: dir.clone(),
                pool_pages: 256,
            });
        let db = SksDb::open(&dir, EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32)))
            .expect("open");
        db.bulk_load((0..CKPT_RECORDS).map(|k| (k, record_for(k))).collect())
            .expect("bulk load");
        db.checkpoint().expect("settle"); // epoch 0: the full persist
        let session = db.session();
        // Consecutive keys: their superseded records cluster in a few
        // data blocks, so the epoch dirties ~1% of the blocks.
        for k in 0..CKPT_DIRTY {
            session.insert(k, record_for(k + 1)).expect("churn");
        }
        drop(session);
        let before = db.snapshot();
        let start = Instant::now();
        db.checkpoint().expect("checkpoint");
        per_run.push(start.elapsed().as_secs_f64() * 1e3);
        let d = db.snapshot().delta(&before);
        let epochs = (d.index_delta_flushes + d.index_full_flushes).max(1);
        bytes_per_epoch = d.index_flush_bytes as f64 / epochs as f64;
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    (median(per_run), bytes_per_epoch)
}

/// Reopen latency in milliseconds (median over RUNS) after DATASET
/// records, a checkpoint, and a TAIL-record tail.
fn recovery_ms(file_backend: bool) -> f64 {
    let label = if file_backend { "rec_file" } else { "rec_mem" };
    let dir = tmpdir(label);
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, DATASET + TAIL + 64)
        .partitions(4)
        .write_behind(64)
        .observability(ObsLevel::Counters);
    let scheme = if file_backend {
        scheme.backend(StorageBackend::File {
            dir: dir.clone(),
            pool_pages: 128,
        })
    } else {
        scheme
    };
    let cfg = EngineConfig::new(scheme).sync(SyncPolicy::EveryN(32));
    {
        let db = SksDb::open(&dir, cfg.clone()).expect("open");
        db.bulk_load((0..DATASET).map(|k| (k, record_for(k))).collect())
            .expect("prefill");
        db.checkpoint().expect("checkpoint");
        let session = db.session();
        for k in 0..TAIL {
            session.insert(k, record_for(k)).expect("tail");
        }
    }
    let mut per_run = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let db = SksDb::open(&dir, cfg.clone()).expect("reopen");
        per_run.push(start.elapsed().as_secs_f64() * 1e3);
        let want = if file_backend {
            RecoveryPath::TailReplay
        } else {
            RecoveryPath::FullReplay
        };
        assert_eq!(db.recovery_report().path, want);
        assert_eq!(db.len(), DATASET);
    }
    std::fs::remove_dir_all(&dir).ok();
    median(per_run)
}

/// A bulk-built file-backend tree for the read-path benches.
fn hot_tree(
    name: &str,
    node_cache: usize,
    record_cache: usize,
) -> (EncipheredBTree, std::path::PathBuf) {
    let dir = tmpdir(name);
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 2)
        .on_disk(&dir)
        .node_cache(node_cache)
        .record_cache(record_cache);
    let items: Vec<(u64, Vec<u8>)> = (0..KEY_SPACE).map(|k| (k, record_for(k))).collect();
    let mut tree = EncipheredBTree::bulk_create(cfg, &items).expect("bulk create");
    tree.flush().expect("checkpoint");
    (tree, dir)
}

/// Nanoseconds per re-probe-heavy point read on the file backend
/// (median over RUNS), node cache off or on.
fn read_hot_ns(node_cache: usize) -> f64 {
    let (tree, dir) = hot_tree(&format!("hot_{node_cache}"), node_cache, 0);
    // Warm buffer pool and node cache to the steady re-probe state.
    for k in 0..HOT_SET {
        assert!(tree.get_pointer(k * 7 % KEY_SPACE).unwrap().is_some());
    }
    let mut per_run = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        for i in 0..HOT_PROBES {
            let k = (i % HOT_SET) * 7 % KEY_SPACE;
            std::hint::black_box(tree.get_pointer(std::hint::black_box(k)).unwrap());
        }
        per_run.push(start.elapsed().as_secs_f64() * 1e9 / HOT_PROBES as f64);
    }
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
    median(per_run)
}

/// Nanoseconds per record streamed by repeated range scans (median over
/// RUNS), node cache off or on — the PR 4 cached range walk.
fn range_scan_ns(node_cache: usize) -> f64 {
    let (tree, dir) = hot_tree(&format!("range_{node_cache}"), node_cache, 0);
    let mut per_run = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let mut streamed = 0u64;
        let start = Instant::now();
        for s in 0..RANGE_SCANS {
            let lo = (s * 37) % (KEY_SPACE - RANGE_WIDTH);
            for item in tree.iter_range(lo, lo + RANGE_WIDTH - 1) {
                std::hint::black_box(item.unwrap());
                streamed += 1;
            }
        }
        per_run.push(start.elapsed().as_secs_f64() * 1e9 / streamed as f64);
    }
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
    median(per_run)
}

/// Nanoseconds per hot record `get` over ~2 KiB records (median over
/// RUNS), decoded-record cache off or on — the PR 4 record cache above
/// the CTR unseal pays off proportionally to record size.
fn record_get_ns(record_cache: usize) -> f64 {
    let dir = tmpdir(&format!("rec_{record_cache}"));
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 2)
        .on_disk(&dir)
        .node_cache(4_096)
        .record_cache(record_cache);
    let items: Vec<(u64, Vec<u8>)> = (0..KEY_SPACE / 4)
        .map(|k| (k, vec![k as u8; 2_000]))
        .collect();
    let mut tree = EncipheredBTree::bulk_create(cfg, &items).expect("bulk create");
    tree.flush().expect("checkpoint");
    let keyspace = KEY_SPACE / 4;
    for k in 0..HOT_SET {
        assert!(tree.get(k * 5 % keyspace).unwrap().is_some());
    }
    let mut per_run = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        for i in 0..RECORD_GETS {
            let k = (i % HOT_SET) * 5 % keyspace;
            std::hint::black_box(tree.get(std::hint::black_box(k)).unwrap());
        }
        per_run.push(start.elapsed().as_secs_f64() * 1e9 / RECORD_GETS as f64);
    }
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
    median(per_run)
}

/// Everything the delete-heavy churn run measures.
struct ChurnMetrics {
    /// Data blocks reclaimed, total.
    reclaimed: u64,
    /// Wall time of the compaction-to-quiescence loop.
    pass_ms: f64,
    /// Used data blocks after / before (lower = more reclaimed).
    used_ratio: f64,
    /// Data blocks reclaimed per budget unit spent — the dead-ratio
    /// victim heap's payoff (1.0 = every budgeted rewrite freed a block).
    space_reclaimed_per_budget: f64,
    /// Node-device blocks after governance / before deletion (lower =
    /// the node store sheds its high-water mark as the dataset shrinks).
    node_device_high_water: f64,
}

/// Delete-heavy churn on the file backend: deletes two thirds of the
/// dataset, then runs the full governance suite (dead-ratio record
/// compaction, node-device sliding, tail truncation) to quiescence.
fn compaction_metrics() -> ChurnMetrics {
    let dir = tmpdir("compaction");
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, CHURN_KEYS + 2)
        .on_disk(&dir)
        .compaction(64);
    let items: Vec<(u64, Vec<u8>)> = (0..CHURN_KEYS).map(|k| (k, vec![k as u8; 96])).collect();
    let mut tree = EncipheredBTree::bulk_create(cfg, &items).expect("bulk create");
    tree.flush().expect("checkpoint");
    let (node_total_before, _) = tree.node_block_usage();
    for k in (0..CHURN_KEYS).filter(|k| k % 3 != 0) {
        tree.delete(k).expect("delete");
    }
    let (total_before, free_before) = tree.data_block_usage();
    let used_before = (total_before - free_before) as f64;
    let start = Instant::now();
    let mut freed = 0u64;
    let mut budget_spent = 0u64;
    loop {
        let r = tree.compact_step(64).expect("compact");
        if r.freed_blocks == 0 {
            break;
        }
        budget_spent += 64;
        freed += r.freed_blocks;
    }
    while tree.compact_nodes(64).expect("node compact").moved_nodes > 0 {}
    tree.flush().expect("checkpoint");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let (total_after, free_after) = tree.data_block_usage();
    let used_after = (total_after - free_after) as f64;
    let (node_total_after, _) = tree.node_block_usage();
    drop(tree);
    std::fs::remove_dir_all(&dir).ok();
    ChurnMetrics {
        reclaimed: freed,
        pass_ms: ms,
        used_ratio: used_after / used_before,
        space_reclaimed_per_budget: freed as f64 / budget_spent.max(1) as f64,
        node_device_high_water: node_total_after as f64 / node_total_before.max(1) as f64,
    }
}

/// Extracts the first `"key": <number>` occurrence from a JSON document
/// (the BENCH_*.json schema keeps every metric key unique, so a full
/// parser is unnecessary — and the container has no serde).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = doc.find(&pat)?;
    let rest = doc[at + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The CI gate: compares this run against a committed baseline and
/// returns the human-readable failures (empty = pass). Throughputs and
/// speedups may not fall below half the baseline; latencies may not more
/// than double. Metrics absent from an older baseline are skipped.
fn regression_failures(current: &str, baseline: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let higher_is_better = [
        "memory_backend",
        "file_backend",
        "file_backend_bulk_load",
        "recovery_full_replay_ops_per_s",
        "checkpoint_delta_speedup",
        "cache_speedup",
        "range_cache_speedup",
        "record_cache_speedup",
        "space_reclaimed_per_budget",
        "txn_commit_ops_per_s",
    ];
    let lower_is_better = [
        "memory_full_replay",
        "file_tail_replay",
        "checkpoint_ms_at_1pct_dirty",
        "index_flush_bytes_per_epoch",
        "node_device_high_water",
        "insert_p50",
        "insert_p99",
        "get_p50",
        "get_p99",
        "txn_commit_p50_ns",
        "txn_commit_p99_ns",
    ];
    for key in higher_is_better {
        let (Some(new), Some(old)) = (json_number(current, key), json_number(baseline, key)) else {
            continue;
        };
        if new < old / 2.0 {
            failures.push(format!(
                "{key} regressed >2x: {new:.2} vs baseline {old:.2}"
            ));
        }
    }
    for key in lower_is_better {
        let (Some(new), Some(old)) = (json_number(current, key), json_number(baseline, key)) else {
            continue;
        };
        if new > old * 2.0 {
            failures.push(format!(
                "{key} regressed >2x: {new:.2}ms vs baseline {old:.2}ms"
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--obs-overhead") {
        eprintln!("bench_report: observability overhead smoke…");
        let (off, full) = obs_overhead();
        let ratio = full / off;
        println!(
            "obs-overhead: Off {off:.1} ops/s, FullTrace {full:.1} ops/s ({:.1}% of Off)",
            ratio * 100.0
        );
        assert!(
            ratio >= 0.90,
            "FullTrace costs more than 10% insert throughput: \
             {full:.1} vs {off:.1} ops/s ({:.1}%)",
            ratio * 100.0
        );
        eprintln!("bench_report: checkpoint-heavy overhead smoke…");
        let ck_off = checkpoint_heavy_throughput_at(ObsLevel::Off);
        let ck_full = checkpoint_heavy_throughput_at(ObsLevel::FullTrace);
        let ck_ratio = ck_full / ck_off;
        println!(
            "obs-overhead (checkpoint-heavy): Off {ck_off:.1} ops/s, FullTrace {ck_full:.1} ops/s \
             ({:.1}% of Off)",
            ck_ratio * 100.0
        );
        assert!(
            ck_ratio >= 0.90,
            "FullTrace costs more than 10% through a checkpoint-heavy workload: \
             {ck_full:.1} vs {ck_off:.1} ops/s ({:.1}%)",
            ck_ratio * 100.0
        );
        return;
    }
    let mut out_path = "BENCH_current.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--baseline" {
            baseline_path = Some(args.get(i + 1).expect("--baseline needs a file").clone());
            i += 2;
        } else {
            out_path = args[i].clone();
            i += 1;
        }
    }

    eprintln!("bench_report: insert throughput…");
    let ins_mem = insert_throughput(false);
    let ins_file = insert_throughput(true);
    eprintln!("bench_report: bulk load…");
    let ins_bulk = bulk_load_throughput();
    eprintln!("bench_report: recovery…");
    let rec_mem = recovery_ms(false);
    let rec_file = recovery_ms(true);
    // Full replay rebuilds DATASET records from snapshots plus a
    // TAIL-record log tail through the batched-replay path.
    let rec_full_ops = (DATASET + TAIL) as f64 / (rec_mem / 1e3);
    eprintln!("bench_report: checkpoint at 1% dirty…");
    let (ckpt_delta_ms, index_bytes_per_epoch) = checkpoint_ms(true);
    let (ckpt_full_ms, _) = checkpoint_ms(false);
    let ckpt_speedup = ckpt_full_ms / ckpt_delta_ms;
    eprintln!("bench_report: read-hot…");
    let hot_off = read_hot_ns(0);
    let hot_on = read_hot_ns(4_096);
    let speedup = hot_off / hot_on;
    eprintln!("bench_report: range scans…");
    let range_off = range_scan_ns(0);
    let range_on = range_scan_ns(4_096);
    let range_speedup = range_off / range_on;
    eprintln!("bench_report: record cache…");
    let rec_get_off = record_get_ns(0);
    let rec_get_on = record_get_ns(8_192);
    let record_speedup = rec_get_off / rec_get_on;
    eprintln!("bench_report: compaction…");
    let churn = compaction_metrics();
    let (reclaimed, compact_ms, used_ratio) = (churn.reclaimed, churn.pass_ms, churn.used_ratio);
    eprintln!("bench_report: op latency…");
    let (ins_p50, ins_p99, get_p50, get_p99) = op_latency_ns();
    eprintln!("bench_report: txn commits…");
    let (txn_ops, txn_p50, txn_p99) = txn_commit_metrics();

    let json = format!(
        r#"{{
  "suite": "sks-btree perf trajectory",
  "config": {{
    "scheme": "oval",
    "partitions": 4,
    "sync": "group-commit-32",
    "inserts": {INSERTS},
    "recovery_dataset": {DATASET},
    "recovery_tail": {TAIL},
    "read_hot_set": {HOT_SET},
    "range_width": {RANGE_WIDTH},
    "churn_keys": {CHURN_KEYS}
  }},
  "insert_throughput_ops_per_s": {{
    "memory_backend": {ins_mem:.1},
    "file_backend": {ins_file:.1},
    "file_backend_bulk_load": {ins_bulk:.1}
  }},
  "recovery_ms": {{
    "memory_full_replay": {rec_mem:.2},
    "file_tail_replay": {rec_file:.2},
    "recovery_full_replay_ops_per_s": {rec_full_ops:.1}
  }},
  "checkpoint_at_1pct_dirty": {{
    "records": {CKPT_RECORDS},
    "dirty_records": {CKPT_DIRTY},
    "checkpoint_ms_at_1pct_dirty": {ckpt_delta_ms:.2},
    "checkpoint_ms_full_rewrite": {ckpt_full_ms:.2},
    "checkpoint_delta_speedup": {ckpt_speedup:.2},
    "index_flush_bytes_per_epoch": {index_bytes_per_epoch:.1}
  }},
  "read_hot_ns_per_op": {{
    "file_cache_off": {hot_off:.1},
    "file_cache_on": {hot_on:.1},
    "cache_speedup": {speedup:.2}
  }},
  "range_scan_ns_per_record": {{
    "node_cache_off": {range_off:.1},
    "node_cache_on": {range_on:.1},
    "range_cache_speedup": {range_speedup:.2}
  }},
  "record_get_ns_per_op": {{
    "record_cache_off": {rec_get_off:.1},
    "record_cache_on": {rec_get_on:.1},
    "record_cache_speedup": {record_speedup:.2}
  }},
  "compaction": {{
    "blocks_reclaimed": {reclaimed},
    "pass_ms": {compact_ms:.2},
    "used_blocks_ratio": {used_ratio:.3},
    "space_reclaimed_per_budget": {space_per_budget:.3},
    "node_device_high_water": {node_high_water:.3}
  }},
  "op_latency_ns": {{
    "insert_p50": {ins_p50},
    "insert_p99": {ins_p99},
    "get_p50": {get_p50},
    "get_p99": {get_p99}
  }},
  "txn_commit": {{
    "keys_per_txn": {TXN_KEYS},
    "txn_commit_ops_per_s": {txn_ops:.1},
    "txn_commit_p50_ns": {txn_p50},
    "txn_commit_p99_ns": {txn_p99}
  }}
}}
"#,
        space_per_budget = churn.space_reclaimed_per_budget,
        node_high_water = churn.node_device_high_water,
    );
    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("bench_report: wrote {out_path}");
    assert!(
        speedup >= 2.0,
        "read-hot cache speedup regressed below 2x: {speedup:.2}"
    );
    // Absolute floors for the pipelined write path: the relative gate
    // only catches regressions, so stagnation would otherwise be
    // invisible. These pin the PR 7 throughput as a hard baseline.
    assert!(
        ins_file >= 8_000.0,
        "file-backend insert throughput fell below the pipelined-write \
         floor of 8000 ops/s: {ins_file:.1}"
    );
    assert!(
        ins_bulk >= ins_file,
        "bulk_load should not be slower than per-insert group commits: \
         {ins_bulk:.1} vs {ins_file:.1} ops/s"
    );
    // The change-proportional maintenance acceptance gate: at ~1% dirty,
    // a delta-index checkpoint must beat the full-rewrite path ≥5x.
    assert!(
        ckpt_speedup >= 5.0,
        "delta-index checkpoint at 1% dirty fell below the 5x target: \
         {ckpt_delta_ms:.2}ms vs full rewrite {ckpt_full_ms:.2}ms ({ckpt_speedup:.2}x)"
    );
    assert!(
        reclaimed > 0,
        "compaction reclaimed nothing on a delete-heavy workload"
    );
    assert!(
        used_ratio < 0.75,
        "compaction left {used_ratio:.3} of the used blocks after deleting 2/3 of the data"
    );
    assert!(
        churn.node_device_high_water < 1.0,
        "node device still at its high-water mark after a 2/3 shrink: {:.3}",
        churn.node_device_high_water
    );

    if let Some(baseline_path) = baseline_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let failures = regression_failures(&json, &baseline);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench_report: REGRESSION — {f}");
            }
            std::process::exit(1);
        }
        eprintln!("bench_report: no >2x regressions against {baseline_path}");
    }
}
