//! Bit-exact regeneration of the paper's printed tables (T1, T2, T3).

use sks_core::disguise::{KeyDisguise, PaperExpSubstitution, SumSubstitution};
use sks_core::OvalSubstitution;
use sks_designs::DifferenceSet;
use sks_storage::OpCounters;

/// T1 — the `(13,4,1)` lines→ovals table of §4.1 (p. 53), `t = 7`.
pub fn table_t1() -> String {
    let ds = DifferenceSet::paper_13_4_1();
    let mut out = String::new();
    out.push_str("T1  (13,4,1) block design: points on lines Ly (left) mapped to ovals Oy = 7·Ly mod 13 (right)\n");
    out.push_str("    [paper p. 53; D = {0,1,3,9}, t = 7]\n\n");
    out.push_str("      lines L0..L12          ovals O0..O12\n");
    for y in 0..13 {
        let line = ds.line_in_base_order(y);
        let oval = ds.oval_in_base_order(y, 7);
        let fmt = |v: &[u64]| {
            v.iter()
                .map(|x| format!("{x:>2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        out.push_str(&format!("    {}    |    {}\n", fmt(&line), fmt(&oval)));
    }
    out
}

/// The raw rows of T1 for programmatic checks.
pub fn t1_rows() -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let ds = DifferenceSet::paper_13_4_1();
    let lines = (0..13).map(|y| ds.line_in_base_order(y)).collect();
    let ovals = (0..13).map(|y| ds.oval_in_base_order(y, 7)).collect();
    (lines, ovals)
}

/// T2 — the §4.2 exponentiation grid (p. 55): the same table with every
/// treatment read as an exponent of `g = 7 (mod 13)`.
pub fn table_t2() -> String {
    let d = PaperExpSubstitution::paper_example(OpCounters::new());
    let lines = d.line_exponent_grid();
    let ovals = d.oval_exponent_grid();
    let mut out = String::new();
    out.push_str("T2  Exponentiation substitution grid (§4.2, p. 55): g = 7, N = 13\n");
    out.push_str("    each cell printed as 7^e — lines (left) and ovals (right)\n\n");
    for y in 0..13usize {
        let fmt = |v: &[u64]| {
            v.iter()
                .map(|e| format!("7^{e:<2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        out.push_str(&format!(
            "    {}   |   {}\n",
            fmt(&lines[y]),
            fmt(&ovals[y])
        ));
    }
    out.push_str("\n    substitution: key k = 7^e mod 13 is replaced by 7^(7e mod 13) mod 13\n");
    out
}

/// T3 — the §4.3 cumulative-sum column: k̂ = 13, 30, 51, …, 312.
pub fn table_t3() -> String {
    let ds = DifferenceSet::paper_13_4_1();
    let mut out = String::new();
    out.push_str("T3  Sum-of-treatments substitutes (§4.3): w = 0, (13,4,1) design\n\n");
    out.push_str("    key   line (points)      k-hat\n");
    for x in 0..13u64 {
        let line = ds.line_in_base_order(x);
        let sum = ds.cumulative_sum(0, x);
        let pts = line
            .iter()
            .map(|p| format!("{p:>2}"))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!("    {x:>3}   {pts}     {sum:>5}\n"));
    }
    out
}

/// The k̂ column of T3.
pub fn t3_column() -> Vec<u128> {
    let ds = DifferenceSet::paper_13_4_1();
    (0..13).map(|x| ds.cumulative_sum(0, x)).collect()
}

/// The oval-substitution mapping used in T1/F1 (`k → 7k mod 13`).
pub fn t1_substitution_pairs() -> Vec<(u64, u64)> {
    let d = OvalSubstitution::paper_example(OpCounters::new());
    (0..13).map(|k| (k, d.disguise(k).unwrap())).collect()
}

/// The sum-substitution object used by F3 (capacity-bounded per §4.3).
pub fn t3_substitution() -> SumSubstitution {
    SumSubstitution::paper_example(OpCounters::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_matches_paper_exactly() {
        let (lines, ovals) = t1_rows();
        // First and last rows as printed on p. 53.
        assert_eq!(lines[0], vec![0, 1, 3, 9]);
        assert_eq!(ovals[0], vec![0, 7, 8, 11]);
        assert_eq!(lines[12], vec![12, 0, 2, 8]);
        assert_eq!(ovals[12], vec![6, 0, 1, 4]);
        let rendered = table_t1();
        assert!(rendered.contains("0  1  3  9"));
        assert!(rendered.contains("0  7  8 11"));
    }

    #[test]
    fn t2_prints_exponent_grid() {
        let rendered = table_t2();
        assert!(rendered.contains("7^0"));
        assert!(rendered.contains("7^12"));
    }

    #[test]
    fn t3_matches_paper_column() {
        assert_eq!(
            t3_column(),
            vec![13, 30, 51, 76, 92, 112, 136, 164, 196, 232, 259, 290, 312]
        );
        let rendered = table_t3();
        for v in [13u64, 30, 312] {
            assert!(rendered.contains(&format!("{v}")), "missing {v}");
        }
    }

    #[test]
    fn t1_substitution_matches_section_text() {
        // "1 is substituted by 7, 2 by 1, 3 by 8, 4 by 2".
        let pairs = t1_substitution_pairs();
        assert_eq!(pairs[1], (1, 7));
        assert_eq!(pairs[2], (2, 1));
        assert_eq!(pairs[3], (3, 8));
        assert_eq!(pairs[4], (4, 2));
    }
}
