//! Workload generation shared by the repro binary and the Criterion
//! benches: deterministic key sets, tree builders per scheme, ground
//! truth extraction for the attack experiments, and the concurrent
//! session-workload driver for the engine benches.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sks_attack::{Edge, GroundTruth};
use sks_core::{EncipheredBTree, Scheme, SchemeConfig};
use sks_engine::SksDb;

/// Deterministic shuffled key set `start..start+n`.
pub fn shuffled_keys(start: u64, n: u64, seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (start..start + n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    keys.shuffle(&mut rng);
    keys
}

/// Keys valid for a scheme: exponentiation schemes exclude 0.
pub fn keys_for(scheme: Scheme, n: u64, seed: u64) -> Vec<u64> {
    match scheme {
        Scheme::Exponentiation | Scheme::ExponentiationPaper => shuffled_keys(1, n, seed),
        _ => shuffled_keys(0, n, seed),
    }
}

/// Builds a populated tree for a scheme at a given scale and block size.
pub fn build_tree(scheme: Scheme, n_keys: u64, block_size: usize, seed: u64) -> EncipheredBTree {
    let mut cfg = SchemeConfig::with_capacity(scheme, n_keys + 2);
    cfg.block_size = block_size;
    let mut tree = EncipheredBTree::create_in_memory(cfg).expect("config must build");
    for k in keys_for(scheme, n_keys, seed) {
        tree.insert(k, record_for(k)).expect("insert in-domain key");
    }
    tree
}

/// Synthetic record payload for key `k`.
pub fn record_for(k: u64) -> Vec<u8> {
    format!("employee:{k:08};dept:{};salary:{}", k % 17, 30_000 + k * 13).into_bytes()
}

/// Random lookup keys drawn from the inserted domain.
pub fn lookup_keys(scheme: Scheme, n_keys: u64, lookups: usize, seed: u64) -> Vec<u64> {
    let lo = match scheme {
        Scheme::Exponentiation | Scheme::ExponentiationPaper => 1,
        _ => 0,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..lookups)
        .map(|_| rng.gen_range(lo..lo + n_keys))
        .collect()
}

/// Extracts the true parent→child edge set and (key, disguised) pairs from a
/// live tree — the experimenter's ground truth for the attack report.
pub fn ground_truth(tree: &EncipheredBTree) -> GroundTruth {
    let mut edges = Vec::new();
    let mut stack = vec![tree.tree().root_id()];
    let mut keys = Vec::new();
    while let Some(id) = stack.pop() {
        let node = tree.tree().inspect_node(id).expect("live tree");
        keys.extend_from_slice(&node.keys);
        for &child in &node.children {
            edges.push(Edge {
                parent: id.as_u32(),
                child: child.as_u32(),
            });
            stack.push(child);
        }
    }
    let key_pairs = match tree.disguise() {
        Some(d) => keys
            .iter()
            .filter_map(|&k| d.disguise(k).ok().map(|dk| (k, dk)))
            .collect(),
        None => Vec::new(),
    };
    GroundTruth { edges, key_pairs }
}

// ---- concurrent engine workloads -----------------------------------------

/// Specification of a concurrent mixed workload against an [`SksDb`]:
/// `threads` sessions each issue `ops_per_thread` operations over
/// `0..key_space`, of which `read_pct`% are point reads and the rest are
/// inserts (overwrites included). Fully deterministic per (thread, seed).
#[derive(Debug, Clone, Copy)]
pub struct EngineWorkload {
    pub threads: usize,
    pub ops_per_thread: usize,
    /// 0..=100; 100 is a read-only scan mix.
    pub read_pct: u8,
    pub key_space: u64,
    pub seed: u64,
}

/// Wall-clock result of one workload run.
#[derive(Debug, Clone, Copy)]
pub struct EngineRunStats {
    pub total_ops: u64,
    pub reads: u64,
    pub writes: u64,
    pub elapsed: Duration,
}

impl EngineRunStats {
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Loads `0..n` sequentially through one session (bench/demo setup).
pub fn prefill_engine(db: &Arc<SksDb>, n: u64) {
    let session = db.session();
    for k in 0..n {
        session
            .insert(k, record_for(k))
            .expect("prefill key in domain");
    }
}

/// Runs the workload: all sessions start on a barrier, the clock covers
/// the whole storm, and per-thread op counts are returned aggregated.
pub fn run_engine_workload(db: &Arc<SksDb>, w: &EngineWorkload) -> EngineRunStats {
    assert!(w.threads >= 1 && w.read_pct <= 100 && w.key_space >= 1);
    let barrier = Arc::new(Barrier::new(w.threads + 1));
    let mut handles = Vec::with_capacity(w.threads);
    for t in 0..w.threads {
        let session = db.session();
        let barrier = Arc::clone(&barrier);
        let w = *w;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(w.seed ^ (t as u64).wrapping_mul(0x9E37));
            let mut reads = 0u64;
            let mut writes = 0u64;
            barrier.wait();
            for _ in 0..w.ops_per_thread {
                let key = rng.gen_range(0..w.key_space);
                if rng.gen_range(0u8..100) < w.read_pct {
                    let _ = session.get(key).expect("in-domain read");
                    reads += 1;
                } else {
                    session
                        .insert(key, record_for(key))
                        .expect("in-domain write");
                    writes += 1;
                }
            }
            (reads, writes)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut reads = 0;
    let mut writes = 0;
    for h in handles {
        let (r, v) = h.join().expect("workload thread");
        reads += r;
        writes += v;
    }
    let elapsed = start.elapsed();
    EngineRunStats {
        total_ops: reads + writes,
        reads,
        writes,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sks_engine::EngineConfig;

    #[test]
    fn shuffled_keys_are_a_permutation() {
        let keys = shuffled_keys(0, 100, 7);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(keys, sorted, "seeded shuffle must actually shuffle");
        // Deterministic.
        assert_eq!(keys, shuffled_keys(0, 100, 7));
    }

    #[test]
    fn build_tree_all_measured_schemes() {
        for scheme in Scheme::MEASURED {
            let tree = build_tree(scheme, 200, 1024, 3);
            assert_eq!(tree.len(), 200, "{}", scheme.name());
            tree.validate().unwrap();
        }
    }

    #[test]
    fn ground_truth_edges_count_matches_structure() {
        let tree = build_tree(Scheme::Oval, 500, 512, 1);
        let gt = ground_truth(&tree);
        // A tree with E edges has E+1 nodes.
        let mut nodes: std::collections::HashSet<u32> = gt.edges.iter().map(|e| e.child).collect();
        nodes.insert(tree.tree().root_id().as_u32());
        assert_eq!(nodes.len(), gt.edges.len() + 1);
        assert_eq!(gt.key_pairs.len() as u64, tree.len());
    }

    #[test]
    fn exp_keys_exclude_zero() {
        let keys = keys_for(Scheme::Exponentiation, 50, 9);
        assert!(!keys.contains(&0));
        assert!(keys.contains(&50));
    }

    #[test]
    fn engine_workload_runs_mixed_sessions() {
        let dir = std::env::temp_dir().join(format!("sks_bench_workload_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, 600).partitions(4);
        let db = SksDb::open(&dir, EngineConfig::new(cfg)).unwrap();
        prefill_engine(&db, 200);
        let stats = run_engine_workload(
            &db,
            &EngineWorkload {
                threads: 4,
                ops_per_thread: 250,
                read_pct: 70,
                key_space: 500,
                seed: 11,
            },
        );
        assert_eq!(stats.total_ops, 1000);
        assert!(stats.reads > 0 && stats.writes > 0);
        assert!(stats.ops_per_sec() > 0.0);
        db.validate().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
