//! Workload generation shared by the repro binary and the Criterion
//! benches: deterministic key sets, tree builders per scheme, and ground
//! truth extraction for the attack experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sks_attack::{Edge, GroundTruth};
use sks_core::{EncipheredBTree, Scheme, SchemeConfig};

/// Deterministic shuffled key set `start..start+n`.
pub fn shuffled_keys(start: u64, n: u64, seed: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (start..start + n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    keys.shuffle(&mut rng);
    keys
}

/// Keys valid for a scheme: exponentiation schemes exclude 0.
pub fn keys_for(scheme: Scheme, n: u64, seed: u64) -> Vec<u64> {
    match scheme {
        Scheme::Exponentiation | Scheme::ExponentiationPaper => shuffled_keys(1, n, seed),
        _ => shuffled_keys(0, n, seed),
    }
}

/// Builds a populated tree for a scheme at a given scale and block size.
pub fn build_tree(
    scheme: Scheme,
    n_keys: u64,
    block_size: usize,
    seed: u64,
) -> EncipheredBTree {
    let mut cfg = SchemeConfig::with_capacity(scheme, n_keys + 2);
    cfg.block_size = block_size;
    let mut tree = EncipheredBTree::create_in_memory(cfg).expect("config must build");
    for k in keys_for(scheme, n_keys, seed) {
        tree.insert(k, record_for(k)).expect("insert in-domain key");
    }
    tree
}

/// Synthetic record payload for key `k`.
pub fn record_for(k: u64) -> Vec<u8> {
    format!("employee:{k:08};dept:{};salary:{}", k % 17, 30_000 + k * 13).into_bytes()
}

/// Random lookup keys drawn from the inserted domain.
pub fn lookup_keys(scheme: Scheme, n_keys: u64, lookups: usize, seed: u64) -> Vec<u64> {
    let lo = match scheme {
        Scheme::Exponentiation | Scheme::ExponentiationPaper => 1,
        _ => 0,
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..lookups).map(|_| rng.gen_range(lo..lo + n_keys)).collect()
}

/// Extracts the true parent→child edge set and (key, disguised) pairs from a
/// live tree — the experimenter's ground truth for the attack report.
pub fn ground_truth(tree: &EncipheredBTree) -> GroundTruth {
    let mut edges = Vec::new();
    let mut stack = vec![tree.tree().root_id()];
    let mut keys = Vec::new();
    while let Some(id) = stack.pop() {
        let node = tree.tree().inspect_node(id).expect("live tree");
        keys.extend_from_slice(&node.keys);
        for &child in &node.children {
            edges.push(Edge {
                parent: id.as_u32(),
                child: child.as_u32(),
            });
            stack.push(child);
        }
    }
    let key_pairs = match tree.disguise() {
        Some(d) => keys
            .iter()
            .filter_map(|&k| d.disguise(k).ok().map(|dk| (k, dk)))
            .collect(),
        None => Vec::new(),
    };
    GroundTruth { edges, key_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_keys_are_a_permutation() {
        let keys = shuffled_keys(0, 100, 7);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(keys, sorted, "seeded shuffle must actually shuffle");
        // Deterministic.
        assert_eq!(keys, shuffled_keys(0, 100, 7));
    }

    #[test]
    fn build_tree_all_measured_schemes() {
        for scheme in Scheme::MEASURED {
            let tree = build_tree(scheme, 200, 1024, 3);
            assert_eq!(tree.len(), 200, "{}", scheme.name());
            tree.validate().unwrap();
        }
    }

    #[test]
    fn ground_truth_edges_count_matches_structure() {
        let tree = build_tree(Scheme::Oval, 500, 512, 1);
        let gt = ground_truth(&tree);
        // A tree with E edges has E+1 nodes.
        let mut nodes: std::collections::HashSet<u32> =
            gt.edges.iter().map(|e| e.child).collect();
        nodes.insert(tree.tree().root_id().as_u32());
        assert_eq!(nodes.len(), gt.edges.len() + 1);
        assert_eq!(gt.key_pairs.len() as u64, tree.len());
    }

    #[test]
    fn exp_keys_exclude_zero() {
        let keys = keys_for(Scheme::Exponentiation, 50, 9);
        assert!(!keys.contains(&0));
        assert!(keys.contains(&50));
    }
}
