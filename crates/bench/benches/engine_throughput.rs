//! Engine throughput: concurrent sessions over a partitioned enciphered
//! tree, sweeping 1/2/4/8 threads. The total operation count is held
//! fixed so the reported elem/s directly shows read scaling as reader
//! threads spread across the `RwLock`ed partitions, plus a mixed
//! read/write sweep and a WAL sync-policy comparison.
//!
//! Interpretation note: on a multi-core host the read curve rises with
//! the thread count (readers never block each other, partitions shard the
//! write locks). On a single-core container the curve is flat — the
//! useful signal there is that it does *not collapse*, i.e. the locking
//! adds no contention penalty as threads are added.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sks_bench::workload::{prefill_engine, run_engine_workload, EngineWorkload};
use sks_core::{Scheme, SchemeConfig};
use sks_engine::{EngineConfig, SksDb};
use sks_storage::SyncPolicy;

const KEY_SPACE: u64 = 8_192;
const TOTAL_OPS: usize = 8_192;
const PARTITIONS: usize = 8;

fn open_db(name: &str) -> std::sync::Arc<SksDb> {
    let dir =
        std::env::temp_dir().join(format!("sks_engine_bench_{}_{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    let scheme = SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 64).partitions(PARTITIONS);
    let cfg = EngineConfig::new(scheme).sync(SyncPolicy::EveryN(64));
    SksDb::open(&dir, cfg).expect("open bench engine")
}

fn bench_read_scaling(c: &mut Criterion) {
    let db = open_db("read");
    prefill_engine(&db, KEY_SPACE);
    let mut group = c.benchmark_group("engine_read_scaling");
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(TOTAL_OPS as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |b| {
            b.iter(|| {
                run_engine_workload(
                    &db,
                    &EngineWorkload {
                        threads,
                        ops_per_thread: TOTAL_OPS / threads,
                        read_pct: 100,
                        key_space: KEY_SPACE,
                        seed: 0xC0FFEE,
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_mixed_scaling(c: &mut Criterion) {
    let db = open_db("mixed");
    prefill_engine(&db, KEY_SPACE);
    let mut group = c.benchmark_group("engine_mixed_90r10w");
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(TOTAL_OPS as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{threads}t")), |b| {
            b.iter(|| {
                run_engine_workload(
                    &db,
                    &EngineWorkload {
                        threads,
                        ops_per_thread: TOTAL_OPS / threads,
                        read_pct: 90,
                        key_space: KEY_SPACE,
                        seed: 0xBEEF,
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_sync_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_write_sync_policy");
    for (name, sync) in [
        ("always", SyncPolicy::Always),
        ("group64", SyncPolicy::EveryN(64)),
        ("never", SyncPolicy::Never),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "sks_engine_bench_sync_{}_{}",
            std::process::id(),
            name
        ));
        std::fs::remove_dir_all(&dir).ok();
        let scheme = SchemeConfig::with_capacity(Scheme::Oval, 4096).partitions(4);
        let db = SksDb::open(&dir, EngineConfig::new(scheme).sync(sync)).expect("open");
        let ops = 1_024;
        group.throughput(Throughput::Elements(ops as u64));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                run_engine_workload(
                    &db,
                    &EngineWorkload {
                        threads: 4,
                        ops_per_thread: ops / 4,
                        read_pct: 0,
                        key_space: 4096,
                        seed: 7,
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_read_scaling, bench_mixed_scaling, bench_sync_policies
}
criterion_main!(benches);
