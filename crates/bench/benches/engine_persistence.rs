//! Durability costs: backend × sync-policy sweep over the engine.
//!
//! Two questions the perf trajectory should track:
//!
//! 1. **Insert throughput** — what do the WAL fsync policy and the
//!    backing store cost on the write path? (File-backend writes land in
//!    the no-steal pool, so the steady-state difference is WAL-dominated;
//!    the page cost is paid at checkpoint.)
//! 2. **Recovery time** — what does a restart cost? The memory backend
//!    replays the whole history; the file backend opens checkpointed
//!    pages and replays only the WAL tail, so its reopen time tracks the
//!    tail length, not the dataset size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sks_core::{Scheme, SchemeConfig, StorageBackend};
use sks_engine::{EngineConfig, RecoveryPath, SksDb};
use sks_storage::SyncPolicy;

const KEY_SPACE: u64 = 4_096;
const PARTITIONS: usize = 4;
const DATASET: u64 = 2_048;
const TAIL: u64 = 64;

fn bench_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sks_persist_bench_{}_{}", std::process::id(), name))
}

fn engine_config(dir: &std::path::Path, file_backend: bool, sync: SyncPolicy) -> EngineConfig {
    let mut scheme =
        SchemeConfig::with_capacity(Scheme::Oval, KEY_SPACE + 64).partitions(PARTITIONS);
    if file_backend {
        scheme = scheme.backend(StorageBackend::File {
            dir: dir.to_path_buf(),
            pool_pages: 128,
        });
    }
    EngineConfig::new(scheme).sync(sync)
}

fn record_for(k: u64) -> Vec<u8> {
    format!("persistence-record-{k:08}").into_bytes()
}

fn bench_insert_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistence_insert_throughput");
    for (backend, file) in [("memory", false), ("file", true)] {
        for (policy, sync) in [
            ("always", SyncPolicy::Always),
            ("group32", SyncPolicy::EveryN(32)),
        ] {
            let dir = bench_dir(&format!("ins_{backend}_{policy}"));
            std::fs::remove_dir_all(&dir).ok();
            let db = SksDb::open(&dir, engine_config(&dir, file, sync)).expect("open");
            let session = db.session();
            const BATCH: u64 = 256;
            group.throughput(Throughput::Elements(BATCH));
            group.bench_function(
                BenchmarkId::from_parameter(format!("{backend}/{policy}")),
                |b| {
                    let mut k = 0u64;
                    b.iter(|| {
                        for _ in 0..BATCH {
                            k = (k + 1) % KEY_SPACE;
                            session.insert(k, record_for(k)).expect("insert");
                        }
                    });
                },
            );
            drop(session);
            drop(db);
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    group.finish();
}

fn bench_recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("persistence_recovery_time");
    for (backend, file) in [("memory", false), ("file", true)] {
        let dir = bench_dir(&format!("rec_{backend}"));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = engine_config(&dir, file, SyncPolicy::EveryN(64));
        {
            let db = SksDb::open(&dir, cfg.clone()).expect("open");
            let session = db.session();
            for k in 0..DATASET {
                session.insert(k, record_for(k)).expect("prefill");
            }
            // Checkpoint, then a short tail: the file backend's reopen
            // should cost O(TAIL), the memory backend's O(DATASET).
            db.checkpoint().expect("checkpoint");
            for k in 0..TAIL {
                session.insert(k, record_for(k)).expect("tail write");
            }
        }
        // Sanity outside the timed loop: the paths really differ.
        {
            let db = SksDb::open(&dir, cfg.clone()).expect("reopen");
            let report = db.recovery_report();
            let want = if file {
                RecoveryPath::TailReplay
            } else {
                RecoveryPath::FullReplay
            };
            assert_eq!(report.path, want);
            assert_eq!(db.len(), DATASET);
        }
        group.bench_function(BenchmarkId::from_parameter(backend), |b| {
            b.iter(|| SksDb::open(&dir, cfg.clone()).expect("timed reopen"));
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_insert_throughput, bench_recovery_time
}
criterion_main!(benches);
