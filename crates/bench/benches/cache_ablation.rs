//! Ablation: buffer-pool capacity under an enciphered point-lookup
//! workload, on the real file backend. The cache sits *below* the crypto
//! boundary (Bayer–Metzger's hardware-unit placement), so it removes
//! physical I/O but not decryptions — this bench quantifies how much of
//! the lookup cost is I/O versus cryptography at each capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_btree_core::{BTree, RecordPtr};
use sks_core::{Scheme, SchemeConfig};
use sks_storage::{OpCounters, PagedFileStore};

fn bench_cache_sizes(c: &mut Criterion) {
    let n_keys = 2_000u64;
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, n_keys + 2);
    let mut group = c.benchmark_group("ablation_cache_capacity");
    for capacity in [2usize, 8, 32, 128] {
        let path = std::env::temp_dir().join(format!(
            "sks_bench_cache_ablation_{}_{capacity}.sks",
            std::process::id()
        ));
        let counters = OpCounters::new();
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        let store =
            PagedFileStore::create(&path, cfg.block_size, capacity, counters.clone()).unwrap();
        let mut tree = BTree::create(store, codec).unwrap();
        for k in 0..n_keys {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        // Checkpoint: pages reach the file and become clean (evictable), so
        // the measured loop exercises the pool's capacity for real.
        tree.flush().unwrap();
        group.bench_function(BenchmarkId::from_parameter(capacity), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 37) % n_keys;
                tree.get(std::hint::black_box(k)).unwrap()
            });
        });
        drop(tree);
        std::fs::remove_file(&path).ok();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache_sizes
}
criterion_main!(benches);
