//! Ablation over both cache layers on the real file backend.
//!
//! * **Buffer pool** (below the crypto boundary — Bayer–Metzger's
//!   hardware-unit placement): removes physical I/O but not decryptions.
//! * **Plaintext node cache** (above the crypto boundary): removes the
//!   decipherments too, while the logical counters keep reporting the
//!   paper's cost.
//!
//! Together the two axes quantify how much of an enciphered point lookup
//! is I/O versus cryptography, and what each layer buys back.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_btree_core::{BTree, RecordPtr};
use sks_core::{EncipheredBTree, Scheme, SchemeConfig};
use sks_storage::{OpCounters, PagedFileStore};

fn bench_cache_sizes(c: &mut Criterion) {
    let n_keys = 2_000u64;
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, n_keys + 2);
    let mut group = c.benchmark_group("ablation_cache_capacity");
    for capacity in [2usize, 8, 32, 128] {
        let path = std::env::temp_dir().join(format!(
            "sks_bench_cache_ablation_{}_{capacity}.sks",
            std::process::id()
        ));
        let counters = OpCounters::new();
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        let store =
            PagedFileStore::create(&path, cfg.block_size, capacity, counters.clone()).unwrap();
        let mut tree = BTree::create(store, codec).unwrap();
        for k in 0..n_keys {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        // Checkpoint: pages reach the file and become clean (evictable), so
        // the measured loop exercises the pool's capacity for real.
        tree.flush().unwrap();
        group.bench_function(BenchmarkId::from_parameter(capacity), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 37) % n_keys;
                tree.get(std::hint::black_box(k)).unwrap()
            });
        });
        drop(tree);
        std::fs::remove_file(&path).ok();
    }
    group.finish();
}

fn bench_node_cache_sizes(c: &mut Criterion) {
    let n_keys = 2_000u64;
    let mut group = c.benchmark_group("ablation_node_cache_capacity");
    for node_cache in [0usize, 16, 128, 2048] {
        let dir = std::env::temp_dir().join(format!(
            "sks_bench_node_cache_ablation_{}_{node_cache}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = SchemeConfig::with_capacity(Scheme::Oval, n_keys + 2)
            .on_disk(&dir)
            .node_cache(node_cache);
        let mut tree = EncipheredBTree::create(cfg).unwrap();
        for k in 0..n_keys {
            tree.insert(k, k.to_be_bytes().to_vec()).unwrap();
        }
        tree.flush().unwrap();
        group.bench_function(BenchmarkId::from_parameter(node_cache), |b| {
            let mut k = 0u64;
            b.iter(|| {
                k = (k + 37) % n_keys;
                tree.get_pointer(std::hint::black_box(k)).unwrap()
            });
        });
        drop(tree);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache_sizes, bench_node_cache_sizes
}
criterion_main!(benches);
