//! E4 — insert/delete churn wall-clock: the §3 reorganisation overhead
//! (whole-triplet re-encipherment vs re-disguising).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_bench::workload::{build_tree, lookup_keys, record_for};
use sks_core::Scheme;

fn bench_churn(c: &mut Criterion) {
    let n_keys = 1_000u64;
    let block_size = 512;
    let mut group = c.benchmark_group("e4_reorg_churn");
    for scheme in [
        Scheme::Plaintext,
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
    ] {
        group.bench_function(BenchmarkId::from_parameter(scheme.name()), |b| {
            let mut tree = build_tree(scheme, n_keys, block_size, 9);
            let victims = lookup_keys(scheme, n_keys, 512, 10);
            let mut i = 0usize;
            b.iter(|| {
                let k = victims[i % victims.len()];
                i += 1;
                if tree.delete(std::hint::black_box(k)).unwrap().is_some() {
                    tree.insert(k, record_for(k)).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_churn
}
criterion_main!(benches);
