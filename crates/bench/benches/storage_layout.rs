//! E3 — node encode/decode throughput per codec and sealer; the dynamic
//! side of the layout experiment (static table: `repro --exp e3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_btree_core::{Node, NodeCodec, RecordPtr};
use sks_core::{Scheme, SchemeConfig, SealerKind};
use sks_storage::{BlockId, OpCounters};

fn full_node(m: usize) -> Node {
    Node {
        id: BlockId(3),
        keys: (0..m as u64).collect(),
        data_ptrs: (0..m as u64).map(RecordPtr).collect(),
        children: (0..=m as u32).map(BlockId).collect(),
    }
}

fn bench_codecs(c: &mut Criterion) {
    let page_size = 1024;
    let mut group = c.benchmark_group("e3_codec_encode_decode");
    let configs: Vec<(String, SchemeConfig)> = vec![
        ("plaintext".into(), {
            let mut c = SchemeConfig::with_capacity(Scheme::Plaintext, 1024);
            c.block_size = page_size;
            c
        }),
        ("oval-des".into(), {
            let mut c = SchemeConfig::with_capacity(Scheme::Oval, 1024);
            c.block_size = page_size;
            c
        }),
        ("oval-speck".into(), {
            let mut c = SchemeConfig::with_capacity(Scheme::Oval, 1024);
            c.block_size = page_size;
            c.sealer = SealerKind::Speck;
            c
        }),
        ("oval-rsa256".into(), {
            let mut c = SchemeConfig::with_capacity(Scheme::Oval, 1024);
            c.block_size = page_size;
            c.sealer = SealerKind::Rsa(256);
            c
        }),
        ("bayer-metzger".into(), {
            let mut c = SchemeConfig::with_capacity(Scheme::BayerMetzger, 1024);
            c.block_size = page_size;
            c
        }),
        ("bm-full-page".into(), {
            let mut c = SchemeConfig::with_capacity(Scheme::BayerMetzgerPage, 1024);
            c.block_size = page_size;
            c
        }),
    ];
    for (label, cfg) in configs {
        let counters = OpCounters::new();
        let (codec, _) = cfg.build_codec(&counters).unwrap();
        let m = codec.max_keys(page_size).min(32);
        let node = full_node(m);
        let mut page = vec![0u8; page_size];
        codec.encode(&node, &mut page).unwrap();
        group.bench_function(BenchmarkId::new("encode", &label), |b| {
            let mut buf = vec![0u8; page_size];
            b.iter(|| codec.encode(std::hint::black_box(&node), &mut buf).unwrap());
        });
        group.bench_function(BenchmarkId::new("decode", &label), |b| {
            b.iter(|| {
                codec
                    .decode(BlockId(3), std::hint::black_box(&page))
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codecs
}
criterion_main!(benches);
