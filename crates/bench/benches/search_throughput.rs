//! E2 — point-lookup wall-clock per scheme (the §6 claim that comparisons
//! on substituted keys beat decryptions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_bench::workload::{build_tree, lookup_keys};
use sks_core::Scheme;

fn bench_search(c: &mut Criterion) {
    let n_keys = 2_000u64;
    let block_size = 1024;
    let mut group = c.benchmark_group("e2_search_throughput");
    for scheme in [
        Scheme::Plaintext,
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::Exponentiation,
        Scheme::BayerMetzger,
        Scheme::BayerMetzgerPage,
    ] {
        let tree = build_tree(scheme, n_keys, block_size, 5);
        let queries = lookup_keys(scheme, n_keys, 256, 6);
        group.bench_function(BenchmarkId::from_parameter(scheme.name()), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                tree.get_pointer(std::hint::black_box(q)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search
}
criterion_main!(benches);
