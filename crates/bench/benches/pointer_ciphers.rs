//! E7 — the §5 cipher choice: DES vs Speck vs secret-parameter RSA for
//! pointer seals, plus raw block-cipher speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use sks_bench::seal_payload_for_bench;
use sks_core::codec::{BlockCipherSealer, RsaSealer, TripletSealer};
use sks_crypto::cipher::BlockCipher64;
use sks_crypto::des::Des;
use sks_crypto::rsa::RsaKey;
use sks_crypto::speck::Speck64;

fn bench_sealers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let sealers: Vec<(&str, Box<dyn TripletSealer>)> = vec![
        ("des", Box::new(BlockCipherSealer::des(0x0123456789ABCDEF))),
        (
            "speck",
            Box::new(BlockCipherSealer::speck(
                0x1122334455667788_99AABBCCDDEEFF00,
            )),
        ),
        (
            "rsa-256",
            Box::new(RsaSealer::new(RsaKey::generate(&mut rng, 256)).unwrap()),
        ),
        (
            "rsa-512",
            Box::new(RsaSealer::new(RsaKey::generate(&mut rng, 512)).unwrap()),
        ),
    ];
    let payload = seal_payload_for_bench(42, 0xF00D, 9);
    let mut group = c.benchmark_group("e7_pointer_seal_roundtrip");
    for (name, sealer) in &sealers {
        group.bench_function(BenchmarkId::from_parameter(*name), |b| {
            b.iter(|| {
                let ct = sealer.seal(std::hint::black_box(&payload));
                sealer.unseal(&ct).unwrap()
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e7_raw_block_ciphers");
    let des = Des::new(0x0123456789ABCDEF);
    let speck = Speck64::from_u128(0x0011223344556677_8899AABBCCDDEEFF);
    group.bench_function("des_block", |b| {
        b.iter(|| des.encrypt_block(std::hint::black_box(0xCAFEBABE)))
    });
    group.bench_function("speck_block", |b| {
        b.iter(|| speck.encrypt_block(std::hint::black_box(0xCAFEBABE)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sealers
}
criterion_main!(benches);
