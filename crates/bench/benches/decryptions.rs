//! E1 — lookup cost as node fanout grows: the `1` vs `log₂ n` vs
//! `whole-page` separation (§3/§6). Wall-clock here; the exact decryption
//! counts are printed by `repro --exp e1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_bench::workload::{build_tree, lookup_keys};
use sks_core::Scheme;

fn bench_fanout_sweep(c: &mut Criterion) {
    let n_keys = 2_000u64;
    let mut group = c.benchmark_group("e1_decryptions_by_fanout");
    for block_size in [512usize, 1024, 4096] {
        for scheme in [Scheme::Oval, Scheme::BayerMetzger, Scheme::BayerMetzgerPage] {
            let tree = build_tree(scheme, n_keys, block_size, 7);
            let queries = lookup_keys(scheme, n_keys, 256, 8);
            let label = format!("{}@{}", scheme.name(), block_size);
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    tree.get_pointer(std::hint::black_box(q)).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fanout_sweep
}
criterion_main!(benches);
