//! E6 — range-scan wall-clock per scheme and width (§1 motivation; §4.3's
//! preserved ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sks_bench::workload::build_tree;
use sks_core::Scheme;

fn bench_ranges(c: &mut Criterion) {
    let n_keys = 2_000u64;
    let block_size = 1024;
    let mut group = c.benchmark_group("e6_range_queries");
    for scheme in [
        Scheme::Plaintext,
        Scheme::Oval,
        Scheme::SumOfTreatments,
        Scheme::BayerMetzger,
    ] {
        let tree = build_tree(scheme, n_keys, block_size, 13);
        for width in [10u64, 100, 1000] {
            group.throughput(Throughput::Elements(width));
            let label = format!("{}@w{}", scheme.name(), width);
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                let lo = n_keys / 3;
                b.iter(|| {
                    tree.range(std::hint::black_box(lo), lo + width - 1)
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ranges
}
criterion_main!(benches);
