//! E5 — cost of the opponent's shape-reconstruction attack as the tree
//! grows (the attack itself; its success rates are in `repro --exp e5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_attack::{parse_image, reconstruct_shape, DiskImage, FormatKnowledge};
use sks_bench::workload::build_tree;
use sks_core::Scheme;

fn bench_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_shape_reconstruction");
    for n_keys in [200u64, 1_000] {
        for scheme in [Scheme::Oval, Scheme::SumOfTreatments] {
            let tree = build_tree(scheme, n_keys, 512, 15);
            let image = DiskImage::new(512, tree.raw_node_image().expect("raw image"));
            let label = format!("{}@{}", scheme.name(), n_keys);
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| {
                    let parsed =
                        parse_image(std::hint::black_box(&image), &FormatKnowledge::default());
                    reconstruct_shape(&parsed)
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_attack
}
criterion_main!(benches);
