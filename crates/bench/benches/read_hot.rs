//! `read_hot`: re-probe-heavy point reads — the workload the plaintext
//! node cache exists for.
//!
//! A hot set of keys is probed round-robin against a file-backend
//! enciphered tree, with the node cache off (every probe re-deciphers on
//! the raw page) versus on (cache-hit probes pay zero physical
//! decipherments; the logical counters still report the paper's cost).
//! The headline target: ≥2× on cache-hit point reads, file backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sks_core::{EncipheredBTree, Scheme, SchemeConfig};

const N_KEYS: u64 = 4_000;
const HOT_SET: u64 = 512;

fn bench_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sks_read_hot_{}_{}", std::process::id(), name))
}

fn build_tree(dir: &std::path::Path, node_cache: usize) -> EncipheredBTree {
    std::fs::remove_dir_all(dir).ok();
    let cfg = SchemeConfig::with_capacity(Scheme::Oval, N_KEYS + 2)
        .on_disk(dir)
        .node_cache(node_cache);
    let items: Vec<(u64, Vec<u8>)> = (0..N_KEYS)
        .map(|k| (k, format!("hot-record-{k:08}").into_bytes()))
        .collect();
    let mut tree = EncipheredBTree::bulk_create(cfg, &items).expect("bulk create");
    tree.flush().expect("checkpoint");
    tree
}

fn bench_read_hot(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_hot");
    for (label, node_cache) in [("cache_off", 0usize), ("cache_on", 4_096)] {
        let dir = bench_dir(label);
        let tree = build_tree(&dir, node_cache);
        // Warm both the buffer pool and (when enabled) the node cache so
        // the measured loop is the steady re-probe state.
        for k in 0..HOT_SET {
            assert!(tree.get_pointer(k * 7 % N_KEYS).unwrap().is_some());
        }
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let k = (i % HOT_SET) * 7 % N_KEYS;
                tree.get_pointer(std::hint::black_box(k)).unwrap()
            });
        });
        drop(tree);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_read_hot
}
criterion_main!(benches);
