//! ASCII rendering of B-trees, used to regenerate the paper's Figures 1–3.
//!
//! Two views exist:
//! * the *logical* view — plaintext keys, as the legal user sees the tree;
//! * the *disk* view — whatever is actually stored in each block (disguised
//!   keys, cryptogram digests), as the opponent sees it. The disk view is
//!   produced by the caller supplying per-node label rows.

use sks_storage::{BlockId, BlockStore};

use crate::codec::NodeCodec;
use crate::tree::{BTree, TreeError};

/// Renders the logical tree level by level, one line per level, each node
/// as `[k1 k2 …]`.
pub fn render_logical<S: BlockStore, C: NodeCodec>(
    tree: &BTree<S, C>,
) -> Result<String, TreeError> {
    let mut out = String::new();
    let mut level: Vec<BlockId> = vec![tree.root_id()];
    let mut depth = 0u32;
    while !level.is_empty() {
        let mut next = Vec::new();
        let mut line = format!("L{depth}: ");
        for (i, &id) in level.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let node = tree.inspect_node(id)?;
            line.push('[');
            for (j, k) in node.keys.iter().enumerate() {
                if j > 0 {
                    line.push(' ');
                }
                line.push_str(&k.to_string());
            }
            line.push(']');
            next.extend_from_slice(&node.children);
        }
        out.push_str(&line);
        out.push('\n');
        level = next;
        depth += 1;
    }
    Ok(out)
}

/// Renders a tree where each node is labelled by an arbitrary function of
/// the node (e.g. its disguised on-disk keys). The walk order and structure
/// come from the logical tree; labels come from `label`.
pub fn render_with<S: BlockStore, C: NodeCodec>(
    tree: &BTree<S, C>,
    mut label: impl FnMut(&crate::node::Node) -> String,
) -> Result<String, TreeError> {
    let mut out = String::new();
    let mut level: Vec<BlockId> = vec![tree.root_id()];
    let mut depth = 0u32;
    while !level.is_empty() {
        let mut next = Vec::new();
        let mut line = format!("L{depth}: ");
        for (i, &id) in level.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let node = tree.inspect_node(id)?;
            line.push_str(&label(&node));
            next.extend_from_slice(&node.children);
        }
        out.push_str(&line);
        out.push('\n');
        level = next;
        depth += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::PlainCodec;
    use crate::node::RecordPtr;
    use sks_storage::{MemDisk, OpCounters};

    #[test]
    fn renders_levels() {
        let counters = OpCounters::new();
        let disk = MemDisk::with_counters(256, counters.clone());
        let mut tree = BTree::create(disk, PlainCodec::new(counters)).unwrap();
        for k in 0..40u64 {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        let s = render_logical(&tree).unwrap();
        assert!(s.starts_with("L0: ["));
        assert!(s.lines().count() as u32 == tree.height());
        // Every key appears in the rendering.
        for k in 0..40u64 {
            assert!(
                s.contains(&format!(" {k} "))
                    || s.contains(&format!("[{k} "))
                    || s.contains(&format!(" {k}]"))
                    || s.contains(&format!("[{k}]")),
                "key {k} missing from rendering:\n{s}"
            );
        }
    }

    #[test]
    fn custom_labels() {
        let counters = OpCounters::new();
        let disk = MemDisk::with_counters(256, counters.clone());
        let mut tree = BTree::create(disk, PlainCodec::new(counters)).unwrap();
        for k in [5u64, 1, 9] {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        let s = render_with(&tree, |node| format!("<{}>", node.n())).unwrap();
        assert_eq!(s.trim(), "L0: <3>");
    }
}
