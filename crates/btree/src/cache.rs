//! The plaintext node cache: a bounded, sharded LRU of *decoded* nodes.
//!
//! The paper's cost model charges every node visit the decipherments the
//! scheme requires; a real engine does not have to pay them twice for the
//! same unchanged page. This cache keeps recently probed nodes in their
//! decoded (plaintext) form so a repeated point read costs zero physical
//! cryptography — while the *logical* operation counters keep reporting
//! the paper's per-scheme cost (see [`crate::NodeCodec::probe_cached`]),
//! so every comparative claim stays measurable with the cache on.
//!
//! Keying: an entry is logically keyed by `(page, version)` — the version
//! being "the bytes currently on the page". The tree invalidates eagerly
//! on every node re-encode and free (the only sites that change a page's
//! version), so an entry is present exactly when it decodes the page's
//! current content; a stale plaintext image can never serve a probe.
//!
//! Security model: entries live in RAM only. Nothing here ever reaches
//! the medium (the stores below continue to hold only enciphered bytes),
//! and entry contents are zeroized when the last reference drops
//! (eviction, invalidation, or cache drop), so later heap re-use cannot
//! scrape decoded keys out of dead memory.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sks_storage::BlockId;

use crate::node::Node;

/// A decoded node plus the codec-specific sidecar needed to replay a
/// probe's logical cost from RAM (see [`crate::NodeCodec::probe_cached`]).
#[derive(Debug)]
pub struct CachedNode {
    /// The plaintext node.
    pub node: Node,
    /// Raw on-medium key-field values (e.g. disguised keys), for codecs
    /// whose probe path recovers or compares them per step. Empty for
    /// codecs that do not need them.
    pub raw_keys: Vec<u64>,
    /// Length in bytes of the page this node was decoded from (page-wide
    /// schemes charge decryptions proportional to it).
    pub page_len: usize,
}

fn zeroize_u64s(v: &mut [u64]) {
    for x in v.iter_mut() {
        // Volatile so the wipe of soon-to-be-freed memory is not elided.
        unsafe { std::ptr::write_volatile(x, 0) };
    }
}

impl Drop for CachedNode {
    fn drop(&mut self) {
        zeroize_u64s(&mut self.node.keys);
        for p in self.node.data_ptrs.iter_mut() {
            unsafe { std::ptr::write_volatile(&mut p.0, 0) };
        }
        for c in self.node.children.iter_mut() {
            unsafe { std::ptr::write_volatile(&mut c.0, 0) };
        }
        zeroize_u64s(&mut self.raw_keys);
    }
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u32, Arc<CachedNode>>,
    /// LRU order, least recently used first (small shards; a Vec scan is
    /// fine and keeps the policy obviously correct).
    lru: Vec<u32>,
}

impl Shard {
    fn touch(&mut self, id: u32) {
        if let Some(pos) = self.lru.iter().position(|&x| x == id) {
            self.lru.remove(pos);
        }
        self.lru.push(id);
    }

    fn forget(&mut self, id: u32) {
        if self.map.remove(&id).is_some() {
            if let Some(pos) = self.lru.iter().position(|&x| x == id) {
                self.lru.remove(pos);
            }
        }
    }
}

/// Sharded LRU over decoded nodes. Interior-mutable so the read path can
/// fill it behind `&self`; shards keep lock hold times short when several
/// readers share one tree.
#[derive(Debug)]
pub struct NodeCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard: usize,
}

const SHARDS: usize = 8;

impl NodeCache {
    /// A cache holding at most `capacity` decoded nodes (rounded up to a
    /// multiple of the shard count).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        NodeCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
        }
    }

    fn shard(&self, id: BlockId) -> &Mutex<Shard> {
        &self.shards[id.0 as usize % SHARDS]
    }

    /// Returns the cached decoding of `id`, if present.
    pub fn get(&self, id: BlockId) -> Option<Arc<CachedNode>> {
        let mut shard = self.shard(id).lock().expect("node cache shard");
        let entry = shard.map.get(&id.0).map(Arc::clone)?;
        shard.touch(id.0);
        Some(entry)
    }

    /// Inserts (or replaces) the decoding of `id`, evicting the least
    /// recently used entry of the shard when full.
    pub fn insert(&self, id: BlockId, entry: CachedNode) {
        let mut shard = self.shard(id).lock().expect("node cache shard");
        shard.map.insert(id.0, Arc::new(entry));
        shard.touch(id.0);
        while shard.map.len() > self.per_shard {
            let victim = shard.lru.remove(0);
            shard.map.remove(&victim);
        }
    }

    /// Drops the entry for `id` (node re-encoded or freed). The plaintext
    /// is zeroized when the last outstanding reference drops.
    pub fn invalidate(&self, id: BlockId) {
        self.shard(id)
            .lock()
            .expect("node cache shard")
            .forget(id.0);
    }

    /// Number of cached nodes across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("node cache shard").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum nodes the cache will hold.
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::RecordPtr;

    fn entry(id: u32, key: u64) -> CachedNode {
        CachedNode {
            node: Node {
                id: BlockId(id),
                keys: vec![key],
                data_ptrs: vec![RecordPtr(key * 10)],
                children: vec![],
            },
            raw_keys: vec![key ^ 0xAA],
            page_len: 256,
        }
    }

    #[test]
    fn hit_miss_and_invalidate() {
        let cache = NodeCache::new(16);
        assert!(cache.get(BlockId(3)).is_none());
        cache.insert(BlockId(3), entry(3, 7));
        let got = cache.get(BlockId(3)).unwrap();
        assert_eq!(got.node.keys, vec![7]);
        cache.invalidate(BlockId(3));
        assert!(cache.get(BlockId(3)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_is_bounded_lru() {
        let cache = NodeCache::new(8); // 1 per shard
                                       // Ids 0 and 8 share shard 0 whose capacity is 1: the older entry
                                       // is evicted.
        cache.insert(BlockId(0), entry(0, 0));
        cache.insert(BlockId(8), entry(8, 8));
        assert!(cache.get(BlockId(0)).is_none(), "LRU evicted");
        assert!(cache.get(BlockId(8)).is_some());
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn replace_keeps_one_entry_per_page() {
        let cache = NodeCache::new(16);
        cache.insert(BlockId(4), entry(4, 1));
        cache.insert(BlockId(4), entry(4, 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(BlockId(4)).unwrap().node.keys, vec![2]);
    }

    #[test]
    fn entries_zeroize_on_drop() {
        // The Drop impl wipes in place; this exercises it directly (the
        // wipe also runs on every eviction above).
        let e = entry(1, 42);
        drop(e);
    }
}
