//! The node-codec boundary: how a plaintext [`Node`] becomes a disk page.
//!
//! This is the paper's entire design space in one trait. §2/§3 (Bayer &
//! Metzger) encipher everything; §4 disguises keys and enciphers only
//! pointers; a plaintext codec is the no-security baseline. The codec owns
//! the page layout, all cryptography, *and the in-page search procedure* —
//! because the number of decryptions a search costs (`log₂n` for
//! search-and-decrypt vs. one for substitution) depends on how the probe
//! walks the ciphertext, the probe must run against the raw page.

use sks_storage::{BlockId, OpCounters, PageOverflow, PageReader, PageWriter};

use crate::cache::CachedNode;
use crate::node::{Node, RecordPtr};

/// Errors from node encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Node does not fit the page (too many triplets for this codec).
    Overflow(PageOverflow),
    /// Page bytes are structurally invalid.
    Corrupt(String),
    /// Decryption produced data inconsistent with the block binding `b`
    /// (wrong key, moved block, or tampering).
    BindingMismatch { expected: u32, got: u32 },
    /// A key is outside the disguise's domain (e.g. `k ≥ v`).
    KeyDomain { key: u64, limit: u64 },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Overflow(o) => write!(f, "node too large for page: {o}"),
            CodecError::Corrupt(msg) => write!(f, "corrupt node page: {msg}"),
            CodecError::BindingMismatch { expected, got } => write!(
                f,
                "block binding mismatch: page claims {got}, expected {expected}"
            ),
            CodecError::KeyDomain { key, limit } => {
                write!(f, "key {key} outside disguise domain (limit {limit})")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<PageOverflow> for CodecError {
    fn from(o: PageOverflow) -> Self {
        CodecError::Overflow(o)
    }
}

/// Outcome of probing a node page for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The key is present with this data pointer.
    Found { data_ptr: RecordPtr },
    /// Descend into this child.
    Descend { child: BlockId },
    /// Leaf reached and the key is absent.
    Missing,
}

/// Encodes/decodes nodes to raw pages and searches within raw pages.
pub trait NodeCodec {
    /// Serialises (and enciphers/disguises) `node` into `page`.
    fn encode(&self, node: &Node, page: &mut [u8]) -> Result<(), CodecError>;

    /// Fully materialises the plaintext node from a page, decrypting
    /// whatever the scheme requires. Update paths (insert/delete/split)
    /// use this.
    fn decode(&self, id: BlockId, page: &[u8]) -> Result<Node, CodecError>;

    /// Searches the *raw page* for `key`, decrypting as little as the
    /// scheme allows. This is where the paper's per-node decryption counts
    /// come from.
    fn probe(&self, id: BlockId, page: &[u8], key: u64) -> Result<Probe, CodecError>;

    /// Maximum number of triplets that fit a page of `page_size` bytes.
    fn max_keys(&self, page_size: usize) -> usize;

    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;

    /// Whether this codec implements the plaintext-node-cache hooks
    /// ([`NodeCodec::decode_for_cache`] / [`NodeCodec::probe_cached`]).
    /// Codecs that do not opt in are simply never cached.
    fn supports_node_cache(&self) -> bool {
        false
    }

    /// Decodes a page into a cacheable plaintext entry *without bumping
    /// any operation counters*: cache maintenance is physical work outside
    /// the paper's cost model, which charges only the probes themselves.
    fn decode_for_cache(&self, id: BlockId, page: &[u8]) -> Result<CachedNode, CodecError> {
        let _ = (id, page);
        Err(CodecError::Corrupt(
            "codec does not support the node cache".into(),
        ))
    }

    /// Searches a cached plaintext node, bumping *exactly* the counters a
    /// raw-page [`NodeCodec::probe`] of the same page would bump — the
    /// logical paper cost — while skipping the cryptographic work. The
    /// returned [`Probe`] must be identical to the raw probe's.
    fn probe_cached(&self, entry: &CachedNode, key: u64) -> Result<Probe, CodecError> {
        let _ = (entry, key);
        Err(CodecError::Corrupt(
            "codec does not support the node cache".into(),
        ))
    }

    /// Materialises the plaintext node from a cached entry, bumping
    /// *exactly* the counters a raw-page [`NodeCodec::decode`] of the same
    /// page would bump — so range scans and update-path descents served
    /// from the cache report the identical logical cost — while skipping
    /// the cryptographic work. The returned node must equal the raw
    /// decode's.
    fn decode_cached(&self, entry: &CachedNode) -> Result<Node, CodecError> {
        let _ = entry;
        Err(CodecError::Corrupt(
            "codec does not support the node cache".into(),
        ))
    }

    /// Whether this codec implements the write-behind hooks
    /// ([`NodeCodec::encode_to_cache`] / [`NodeCodec::encode_from_cache`]).
    /// Codecs that do not opt in re-seal on every mutation.
    fn supports_write_behind(&self) -> bool {
        false
    }

    /// The deferral half of write-behind sealing: validates `node` exactly
    /// as [`NodeCodec::encode`] into a page of `page_len` bytes would
    /// (shape, key domain, fit — same error cases), bumps *exactly* the
    /// logical counters that encode would bump, but performs no
    /// cryptography and produces no ciphertext. Returns a [`CachedNode`]
    /// equal to what decoding the would-be page yields (including any
    /// codec-specific raw-key sidecar), so reads can serve the dirty node
    /// through [`NodeCodec::probe_cached`] / [`NodeCodec::decode_cached`]
    /// and the eventual seal can reuse the sidecar.
    fn encode_to_cache(&self, node: &Node, page_len: usize) -> Result<CachedNode, CodecError> {
        let _ = (node, page_len);
        Err(CodecError::Corrupt(
            "codec does not support write-behind sealing".into(),
        ))
    }

    /// The seal half of write-behind: physically enciphers a deferred
    /// entry into `page` *without touching any operation counters* — the
    /// logical cost was already charged per mutation by
    /// [`NodeCodec::encode_to_cache`]; this is maintenance work below the
    /// paper's cost model. The page bytes must equal what a plain
    /// [`NodeCodec::encode`] of `entry.node` would produce.
    fn encode_from_cache(&self, entry: &CachedNode, page: &mut [u8]) -> Result<(), CodecError> {
        let _ = (entry, page);
        Err(CodecError::Corrupt(
            "codec does not support write-behind sealing".into(),
        ))
    }
}

/// Header layout shared by the provided codecs:
/// `[u8 tag, u8 is_leaf, u16 n, u32 block_id]` (8 bytes).
pub const NODE_HEADER_LEN: usize = 8;

/// Writes the common header. `tag` identifies the codec that produced the
/// page (decoding with the wrong codec fails fast).
pub fn write_header(w: &mut PageWriter<'_>, tag: u8, node: &Node) -> Result<(), CodecError> {
    w.put_u8(tag)?;
    w.put_u8(node.is_leaf() as u8)?;
    w.put_u16(node.n() as u16)?;
    w.put_u32(node.id.0)?;
    Ok(())
}

/// Reads and validates the common header; returns `(is_leaf, n)`.
pub fn read_header(
    r: &mut PageReader<'_>,
    tag: u8,
    id: BlockId,
) -> Result<(bool, usize), CodecError> {
    let got_tag = r.get_u8()?;
    if got_tag != tag {
        return Err(CodecError::Corrupt(format!(
            "codec tag mismatch: page has {got_tag:#x}, codec expects {tag:#x}"
        )));
    }
    let is_leaf = match r.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(CodecError::Corrupt(format!("bad leaf flag {other}"))),
    };
    let n = r.get_u16()? as usize;
    let got_id = r.get_u32()?;
    if got_id != id.0 {
        return Err(CodecError::BindingMismatch {
            expected: id.0,
            got: got_id,
        });
    }
    // The entry count is medium-controlled. No codec packs an entry into
    // less than one byte, so a count beyond the page's remaining capacity
    // is corrupt — reject it here, before any decoder sizes an allocation
    // or walks fixed-stride offsets from it.
    if n > r.remaining() {
        return Err(CodecError::Corrupt(format!(
            "entry count {n} exceeds page capacity ({} bytes)",
            r.remaining()
        )));
    }
    Ok((is_leaf, n))
}

/// The plaintext codec: no cryptography at all. This is the "no security"
/// baseline every enciphered scheme is compared against, and the codec used
/// for trees *behind* a high-level security filter (§4.3), where protection
/// happens above the DBMS.
#[derive(Debug, Clone)]
pub struct PlainCodec {
    counters: OpCounters,
}

const PLAIN_TAG: u8 = 0x00;

impl PlainCodec {
    pub fn new(counters: OpCounters) -> Self {
        PlainCodec { counters }
    }
}

impl NodeCodec for PlainCodec {
    fn encode(&self, node: &Node, page: &mut [u8]) -> Result<(), CodecError> {
        node.check_shape().map_err(CodecError::Corrupt)?;
        let mut w = PageWriter::new(page);
        write_header(&mut w, PLAIN_TAG, node)?;
        for (&k, &a) in node.keys.iter().zip(&node.data_ptrs) {
            w.put_u64(k)?;
            w.put_u64(a.0)?;
        }
        for &c in &node.children {
            w.put_u32(c.0)?;
        }
        w.pad_remaining();
        Ok(())
    }

    fn decode(&self, id: BlockId, page: &[u8]) -> Result<Node, CodecError> {
        let mut r = PageReader::new(page);
        let (is_leaf, n) = read_header(&mut r, PLAIN_TAG, id)?;
        let mut keys = Vec::with_capacity(n);
        let mut data_ptrs = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push(r.get_u64()?);
            data_ptrs.push(RecordPtr(r.get_u64()?));
        }
        let mut children = Vec::new();
        if !is_leaf {
            for _ in 0..=n {
                children.push(BlockId(r.get_u32()?));
            }
        }
        let node = Node {
            id,
            keys,
            data_ptrs,
            children,
        };
        node.check_shape().map_err(CodecError::Corrupt)?;
        Ok(node)
    }

    fn probe(&self, id: BlockId, page: &[u8], key: u64) -> Result<Probe, CodecError> {
        // Plaintext keys: binary search directly on the page.
        let mut r = PageReader::new(page);
        let (is_leaf, n) = read_header(&mut r, PLAIN_TAG, id)?;
        let key_at = |i: usize| -> Result<u64, CodecError> {
            let mut rr = PageReader::new(page);
            rr.seek(NODE_HEADER_LEN + i * 16)?;
            Ok(rr.get_u64()?)
        };
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            self.counters.bump(|c| &c.key_compares);
            let k = key_at(mid)?;
            if k == key {
                let mut rr = PageReader::new(page);
                rr.seek(NODE_HEADER_LEN + mid * 16 + 8)?;
                return Ok(Probe::Found {
                    data_ptr: RecordPtr(rr.get_u64()?),
                });
            } else if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if is_leaf {
            return Ok(Probe::Missing);
        }
        let mut rr = PageReader::new(page);
        rr.seek(NODE_HEADER_LEN + n * 16 + lo * 4)?;
        Ok(Probe::Descend {
            child: BlockId(rr.get_u32()?),
        })
    }

    fn max_keys(&self, page_size: usize) -> usize {
        // header + n*(8 key + 8 data ptr) + (n+1)*4 child ptr <= page
        if page_size <= NODE_HEADER_LEN + 4 {
            return 0;
        }
        (page_size - NODE_HEADER_LEN - 4) / 20
    }

    fn name(&self) -> &'static str {
        "plaintext"
    }

    fn supports_node_cache(&self) -> bool {
        true
    }

    fn decode_for_cache(&self, id: BlockId, page: &[u8]) -> Result<CachedNode, CodecError> {
        // Plain decoding touches no counters, so the normal path is
        // already silent.
        let page_len = page.len();
        Ok(CachedNode {
            node: self.decode(id, page)?,
            raw_keys: Vec::new(),
            page_len,
        })
    }

    fn probe_cached(&self, entry: &CachedNode, key: u64) -> Result<Probe, CodecError> {
        // The same binary search as `probe`, compare for compare.
        let node = &entry.node;
        let (mut lo, mut hi) = (0usize, node.n());
        while lo < hi {
            let mid = (lo + hi) / 2;
            self.counters.bump(|c| &c.key_compares);
            let k = node.keys[mid];
            if k == key {
                return Ok(Probe::Found {
                    data_ptr: node.data_ptrs[mid],
                });
            } else if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if node.is_leaf() {
            return Ok(Probe::Missing);
        }
        Ok(Probe::Descend {
            child: node.children[lo],
        })
    }

    fn decode_cached(&self, entry: &CachedNode) -> Result<Node, CodecError> {
        // A raw plaintext decode touches no counters either.
        Ok(entry.node.clone())
    }

    fn supports_write_behind(&self) -> bool {
        true
    }

    fn encode_to_cache(&self, node: &Node, page_len: usize) -> Result<CachedNode, CodecError> {
        // Plain encoding touches no counters; a scratch encode is the
        // validation (shape + fit), then the plaintext node is the entry.
        let mut scratch = vec![0u8; page_len];
        self.encode(node, &mut scratch)?;
        Ok(CachedNode {
            node: node.clone(),
            raw_keys: Vec::new(),
            page_len,
        })
    }

    fn encode_from_cache(&self, entry: &CachedNode, page: &mut [u8]) -> Result<(), CodecError> {
        // Counter-free already.
        self.encode(&entry.node, page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u32) -> Node {
        Node {
            id: BlockId(id),
            keys: vec![10, 20, 30],
            data_ptrs: vec![RecordPtr(100), RecordPtr(200), RecordPtr(300)],
            children: vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let codec = PlainCodec::new(OpCounters::new());
        let node = sample(9);
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert_eq!(codec.decode(BlockId(9), &page).unwrap(), node);
    }

    #[test]
    fn leaf_roundtrip() {
        let codec = PlainCodec::new(OpCounters::new());
        let mut leaf = Node::leaf(BlockId(3));
        leaf.keys = vec![5];
        leaf.data_ptrs = vec![RecordPtr(55)];
        let mut page = vec![0u8; 64];
        codec.encode(&leaf, &mut page).unwrap();
        let back = codec.decode(BlockId(3), &page).unwrap();
        assert!(back.is_leaf());
        assert_eq!(back, leaf);
    }

    #[test]
    fn binding_mismatch_detected() {
        let codec = PlainCodec::new(OpCounters::new());
        let node = sample(9);
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert!(matches!(
            codec.decode(BlockId(10), &page),
            Err(CodecError::BindingMismatch {
                expected: 10,
                got: 9
            })
        ));
    }

    #[test]
    fn tag_mismatch_detected() {
        let codec = PlainCodec::new(OpCounters::new());
        let node = sample(9);
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        page[0] = 0x77;
        assert!(matches!(
            codec.decode(BlockId(9), &page),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn probe_found_descend_missing() {
        let codec = PlainCodec::new(OpCounters::new());
        let node = sample(9);
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        assert_eq!(
            codec.probe(BlockId(9), &page, 20).unwrap(),
            Probe::Found {
                data_ptr: RecordPtr(200)
            }
        );
        assert_eq!(
            codec.probe(BlockId(9), &page, 15).unwrap(),
            Probe::Descend { child: BlockId(2) }
        );
        assert_eq!(
            codec.probe(BlockId(9), &page, 5).unwrap(),
            Probe::Descend { child: BlockId(1) }
        );
        assert_eq!(
            codec.probe(BlockId(9), &page, 99).unwrap(),
            Probe::Descend { child: BlockId(4) }
        );

        let mut leaf = Node::leaf(BlockId(2));
        leaf.keys = vec![7];
        leaf.data_ptrs = vec![RecordPtr(70)];
        let mut lp = vec![0u8; 256];
        codec.encode(&leaf, &mut lp).unwrap();
        assert_eq!(codec.probe(BlockId(2), &lp, 8).unwrap(), Probe::Missing);
    }

    #[test]
    fn probe_counts_comparisons_not_decryptions() {
        let counters = OpCounters::new();
        let codec = PlainCodec::new(counters.clone());
        let node = sample(9);
        let mut page = vec![0u8; 256];
        codec.encode(&node, &mut page).unwrap();
        let _ = codec.probe(BlockId(9), &page, 20).unwrap();
        let s = counters.snapshot();
        assert!(s.key_compares >= 1);
        assert_eq!(s.total_decrypts(), 0);
    }

    #[test]
    fn max_keys_consistent_with_encode() {
        let codec = PlainCodec::new(OpCounters::new());
        for page_size in [64usize, 128, 256, 512, 4096] {
            let m = codec.max_keys(page_size);
            // A node with exactly m keys (internal, worst case) must fit.
            let node = Node {
                id: BlockId(1),
                keys: (0..m as u64).collect(),
                data_ptrs: (0..m as u64).map(RecordPtr).collect(),
                children: (0..=m as u32).map(BlockId).collect(),
            };
            let mut page = vec![0u8; page_size];
            codec.encode(&node, &mut page).unwrap_or_else(|e| {
                panic!("m={m} should fit page {page_size}: {e}");
            });
            // m+1 must not fit.
            let node_big = Node {
                id: BlockId(1),
                keys: (0..=m as u64).collect(),
                data_ptrs: (0..=m as u64).map(RecordPtr).collect(),
                children: (0..=m as u32 + 1).map(BlockId).collect(),
            };
            assert!(codec.encode(&node_big, &mut page).is_err());
        }
    }

    #[test]
    fn overflow_reported_for_tiny_page() {
        let codec = PlainCodec::new(OpCounters::new());
        let node = sample(9);
        let mut page = vec![0u8; 32];
        assert!(matches!(
            codec.encode(&node, &mut page),
            Err(CodecError::Overflow(_))
        ));
    }
}
