//! # sks-btree-core — the disk B-tree substrate
//!
//! A paged B-tree of `[search key, data pointer, tree pointer]` triplets in
//! the Elmasri & Navathe layout the paper adopts in §3: `n` keys, `n` data
//! pointers and `n+1` tree pointers per node block.
//!
//! The crate is deliberately agnostic about *how* a node is laid out on
//! disk: all (de)serialisation and all cryptography live behind the
//! [`NodeCodec`] trait, so the identical tree algorithms run plaintext
//! (this crate's [`PlainCodec`]), fully enciphered (Bayer–Metzger, in
//! `sks-core`), or key-disguised (the paper's scheme, in `sks-core`) —
//! which is precisely the paper's point that the substitution happens
//! "after the shape of the B-Tree has been determined".
//!
//! * [`node`] — plaintext node representation and in-node search.
//! * [`codec`] — the [`NodeCodec`] boundary, probe semantics, [`PlainCodec`].
//! * [`cache`] — the bounded plaintext node cache (RAM-only, zeroized on
//!   evict) that lets repeated probes skip physical decipherments while
//!   the logical counters keep reporting the paper's cost.
//! * [`tree`] — create/open, get/insert/delete/range, validation; CLRS
//!   preemptive split/merge balancing; every access counted.
//! * [`render`] — ASCII renderings for the paper's figures.

pub mod cache;
pub mod codec;
pub mod node;
pub mod render;
pub mod tree;

#[cfg(test)]
mod tree_tests;

pub use cache::{CachedNode, NodeCache};
pub use codec::{CodecError, NodeCodec, PlainCodec, Probe, NODE_HEADER_LEN};
pub use node::{Node, NodeSearch, RecordPtr};
pub use render::{render_logical, render_with};
pub use tree::{BTree, RangeIter, TreeError};
