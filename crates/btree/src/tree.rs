//! The disk-resident B-tree of `[search key, data pointer, tree pointer]`
//! triplets.
//!
//! Every node access round-trips through the [`BlockStore`] and the
//! [`NodeCodec`], so operation counters reflect exactly what a paged,
//! enciphered B-tree would do: searches *probe* raw pages (paying only the
//! decryptions the scheme requires), while structure modifications decode
//! and re-encode whole nodes (paying the re-encipherment costs §3 of the
//! paper analyses).
//!
//! The balancing algorithm is the classic preemptive-split/merge B-tree
//! (CLRS ch. 18) with minimum degree `t` derived from the codec's fanout.

use std::collections::HashMap;
use std::sync::Arc;

use sks_storage::{BlockId, BlockStore, OpCounters, PageReader, PageWriter, Stage, StorageError};

use crate::cache::{CachedNode, NodeCache};
use crate::codec::{CodecError, NodeCodec, Probe};
use crate::node::{Node, NodeSearch, RecordPtr};

/// Errors from tree operations.
#[derive(Debug)]
pub enum TreeError {
    Storage(StorageError),
    Codec(CodecError),
    /// The codec cannot fit even a minimal node in the store's block size.
    PageTooSmall {
        page_size: usize,
        max_keys: usize,
    },
    /// Structural invariant violated (returned by [`BTree::validate`]).
    Invalid(String),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Storage(e) => write!(f, "storage error: {e}"),
            TreeError::Codec(e) => write!(f, "codec error: {e}"),
            TreeError::PageTooSmall {
                page_size,
                max_keys,
            } => write!(
                f,
                "page of {page_size} bytes holds only {max_keys} keys; need at least 3"
            ),
            TreeError::Invalid(msg) => write!(f, "tree invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<StorageError> for TreeError {
    fn from(e: StorageError) -> Self {
        TreeError::Storage(e)
    }
}

impl From<CodecError> for TreeError {
    fn from(e: CodecError) -> Self {
        TreeError::Codec(e)
    }
}

const SUPER_MAGIC: u64 = 0x534b_5342_5452_4545; // "SKSBTREE"

/// Dirty plaintext nodes whose physical re-encipherment has been deferred
/// (see [`BTree::enable_write_behind`]). Unlike the read cache this is not
/// interior-mutable: only `&mut self` tree paths insert, evict or seal;
/// `&self` read paths merely look entries up — a dirty node's disk page is
/// *stale*, so reads must be served from here first.
#[derive(Debug, Default)]
struct WriteBehindSet {
    /// Block id → slot in `slots`.
    map: HashMap<u32, usize>,
    slots: Vec<WbSlot>,
    /// Slots emptied by `forget`/eviction, reused before the ring grows.
    vacant: Vec<usize>,
    /// Clock hand: the next slot the eviction sweep examines. Eviction
    /// is second-chance: every (re-)deferral sets the slot's referenced
    /// bit, the sweep clears bits until it meets a cold entry — a node
    /// re-dirtied every ring revolution (a hot leaf absorbing a run of
    /// inserts) keeps absorbing instead of being re-sealed per round.
    hand: usize,
    budget: usize,
}

/// One clock slot of the write-behind ring.
#[derive(Debug)]
struct WbSlot {
    id: u32,
    /// `None` = vacant (forgotten or evicted, awaiting reuse).
    entry: Option<Arc<CachedNode>>,
    referenced: bool,
}

impl WriteBehindSet {
    fn new(budget: usize) -> Self {
        WriteBehindSet {
            map: HashMap::new(),
            slots: Vec::new(),
            vacant: Vec::new(),
            hand: 0,
            budget,
        }
    }

    fn get(&self, id: BlockId) -> Option<Arc<CachedNode>> {
        let idx = *self.map.get(&id.0)?;
        self.slots[idx].entry.as_ref().map(Arc::clone)
    }

    fn insert(&mut self, id: BlockId, entry: CachedNode) {
        let entry = Arc::new(entry);
        if let Some(&idx) = self.map.get(&id.0) {
            let slot = &mut self.slots[idx];
            slot.entry = Some(entry);
            slot.referenced = true; // the second chance
            return;
        }
        let slot = WbSlot {
            id: id.0,
            entry: Some(entry),
            referenced: true,
        };
        let idx = match self.vacant.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(id.0, idx);
    }

    /// Drops `id` without sealing (the node was freed; its plaintext is
    /// zeroized when the last reference drops).
    fn forget(&mut self, id: BlockId) {
        if let Some(idx) = self.map.remove(&id.0) {
            self.slots[idx].entry = None;
            self.vacant.push(idx);
        }
    }

    /// Removes and returns the eviction victim, for sealing: the first
    /// entry at the hand whose referenced bit is already clear. Entries
    /// passed on the way lose their bit, so a full revolution always
    /// produces a victim.
    fn pop_victim(&mut self) -> Option<(BlockId, Arc<CachedNode>)> {
        if self.map.is_empty() {
            return None;
        }
        loop {
            let idx = self.hand % self.slots.len();
            self.hand = (idx + 1) % self.slots.len();
            let slot = &mut self.slots[idx];
            if slot.entry.is_none() {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let entry = slot.entry.take().expect("occupied slot");
            self.map.remove(&slot.id);
            self.vacant.push(idx);
            return Some((BlockId(slot.id), entry));
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A disk B-tree parameterised by block store and node codec.
#[derive(Debug)]
pub struct BTree<S: BlockStore, C: NodeCodec> {
    store: S,
    codec: C,
    superblock: BlockId,
    root: BlockId,
    count: u64,
    height: u32,
    /// CLRS minimum degree: nodes hold `t-1 ..= 2t-1` keys (root exempt).
    t: usize,
    /// Opaque application stamp persisted in the superblock. The
    /// enciphered-tree layer records the data device's index epoch here
    /// at each flush, so a reopen can tell whether the two devices
    /// committed in step.
    stamp: u64,
    /// Plaintext node cache for the probe path (None = disabled). Entries
    /// are invalidated on every node re-encode/free, so a cached decoding
    /// always matches the page's current content.
    cache: Option<NodeCache>,
    /// Write-behind set of dirty nodes awaiting their physical seal
    /// (None = every mutation re-seals immediately). Logical encode
    /// counters are charged at mutation time by the codec's
    /// [`NodeCodec::encode_to_cache`]; the seal itself is counter-silent.
    wb: Option<WriteBehindSet>,
}

impl<S: BlockStore, C: NodeCodec> BTree<S, C> {
    /// Bulk-loads a tree bottom-up from *strictly ascending* `(key, ptr)`
    /// pairs — the standard index-build path a DBMS uses for initial loads.
    /// Compared to repeated inserts this writes every node exactly once
    /// (one encipherment pass per block, no splits) and produces uniform
    /// fill ≥ `t − 1` everywhere.
    pub fn bulk_load(store: S, codec: C, items: &[(u64, RecordPtr)]) -> Result<Self, TreeError> {
        let mut tree = BTree::create(store, codec)?;
        tree.bulk_fill(items)?;
        Ok(tree)
    }

    /// In-place [`BTree::bulk_load`] into a tree that is still *pristine*
    /// (no key was ever inserted: count 0, height 1, the root an empty
    /// leaf) — the shape every freshly created tree has. This is the
    /// sorted-ingest fast path for stacks whose stores are already owned
    /// by a live tree and therefore cannot go through the constructor.
    pub fn bulk_fill(&mut self, items: &[(u64, RecordPtr)]) -> Result<(), TreeError> {
        if self.count != 0 || self.height != 1 {
            return Err(TreeError::Invalid(format!(
                "bulk_fill requires a pristine empty tree (count {}, height {})",
                self.count, self.height
            )));
        }
        if let Some(w) = items.windows(2).find(|w| w[0].0 >= w[1].0) {
            return Err(TreeError::Invalid(format!(
                "bulk_load requires strictly ascending keys ({} then {})",
                w[0].0, w[1].0
            )));
        }
        let tree = self;
        if items.is_empty() {
            return Ok(());
        }
        let t = tree.t;
        let max = 2 * t - 1;
        if items.len() <= max {
            let mut root = Node::leaf(tree.root);
            root.keys = items.iter().map(|&(k, _)| k).collect();
            root.data_ptrs = items.iter().map(|&(_, p)| p).collect();
            tree.write_node(&root)?;
            tree.count = items.len() as u64;
            tree.write_superblock()?;
            return Ok(());
        }
        // Chunk sizes that keep every node within [t-1, 2t-1] keys, leaving
        // one separator key between adjacent chunks.
        let next_chunk = |remaining: usize| -> usize {
            if remaining <= max {
                remaining
            } else if remaining < max + 1 + (t - 1) {
                // Shrink so the tail chunk still reaches t-1 keys.
                remaining - 1 - (t - 1)
            } else {
                max
            }
        };
        // Build the leaf level. The freshly created empty root is reused as
        // the first leaf block.
        let mut level_blocks: Vec<BlockId> = Vec::new();
        let mut seps: Vec<(u64, RecordPtr)> = Vec::new();
        let mut i = 0usize;
        let mut first = true;
        while i < items.len() {
            let chunk = next_chunk(items.len() - i);
            let id = if first {
                first = false;
                tree.root
            } else {
                tree.allocate_node()?
            };
            let mut leaf = Node::leaf(id);
            leaf.keys = items[i..i + chunk].iter().map(|&(k, _)| k).collect();
            leaf.data_ptrs = items[i..i + chunk].iter().map(|&(_, p)| p).collect();
            tree.write_node(&leaf)?;
            level_blocks.push(id);
            i += chunk;
            if i < items.len() {
                seps.push(items[i]);
                i += 1;
            }
        }
        // Build internal levels until one root remains.
        let mut height = 1u32;
        while level_blocks.len() > 1 {
            debug_assert_eq!(level_blocks.len(), seps.len() + 1);
            let mut next_blocks = Vec::new();
            let mut next_seps = Vec::new();
            let mut child = 0usize;
            let mut j = 0usize;
            loop {
                let chunk = next_chunk(seps.len() - j);
                let id = tree.allocate_node()?;
                let node = Node {
                    id,
                    keys: seps[j..j + chunk].iter().map(|&(k, _)| k).collect(),
                    data_ptrs: seps[j..j + chunk].iter().map(|&(_, p)| p).collect(),
                    children: level_blocks[child..child + chunk + 1].to_vec(),
                };
                tree.write_node(&node)?;
                next_blocks.push(id);
                child += chunk + 1;
                j += chunk;
                if j < seps.len() {
                    next_seps.push(seps[j]);
                    j += 1;
                } else {
                    break;
                }
            }
            debug_assert_eq!(child, level_blocks.len());
            level_blocks = next_blocks;
            seps = next_seps;
            height += 1;
        }
        tree.root = level_blocks[0];
        tree.height = height;
        tree.count = items.len() as u64;
        tree.write_superblock()?;
        Ok(())
    }

    /// Creates a fresh tree on an empty store (allocates the superblock and
    /// an empty root leaf).
    pub fn create(mut store: S, codec: C) -> Result<Self, TreeError> {
        let page_size = store.block_size();
        let max_keys = codec.max_keys(page_size);
        if max_keys < 3 {
            return Err(TreeError::PageTooSmall {
                page_size,
                max_keys,
            });
        }
        let t = max_keys.div_ceil(2); // 2t-1 <= max_keys
        let superblock = store.allocate()?;
        let root_id = store.allocate()?;
        let mut tree = BTree {
            store,
            codec,
            superblock,
            root: root_id,
            count: 0,
            height: 1,
            t,
            stamp: 0,
            cache: None,
            wb: None,
        };
        let root = Node::leaf(root_id);
        tree.write_node(&root)?;
        tree.write_superblock()?;
        Ok(tree)
    }

    /// Reopens a tree persisted on `store` (reads the superblock).
    pub fn open(store: S, codec: C) -> Result<Self, TreeError> {
        let page_size = store.block_size();
        let max_keys = codec.max_keys(page_size);
        let superblock = BlockId(0);
        let page = store.read_block_vec(superblock)?;
        let mut r = PageReader::new(&page);
        let magic = r.get_u64().map_err(CodecError::from)?;
        if magic != SUPER_MAGIC {
            return Err(TreeError::Codec(CodecError::Corrupt(
                "bad superblock magic".into(),
            )));
        }
        let root = BlockId(r.get_u32().map_err(CodecError::from)?);
        let count = r.get_u64().map_err(CodecError::from)?;
        let height = r.get_u32().map_err(CodecError::from)?;
        let t = r.get_u32().map_err(CodecError::from)? as usize;
        let stamp = r.get_u64().map_err(CodecError::from)?;
        if t < 2 || 2 * t - 1 > max_keys {
            return Err(TreeError::Codec(CodecError::Corrupt(format!(
                "superblock degree t={t} incompatible with codec fanout {max_keys}"
            ))));
        }
        Ok(BTree {
            store,
            codec,
            superblock,
            root,
            count,
            height,
            t,
            stamp,
            cache: None,
            wb: None,
        })
    }

    /// Enables the plaintext node cache with room for `capacity` decoded
    /// nodes (0 disables it). Only effective for codecs that implement the
    /// cache hooks ([`NodeCodec::supports_node_cache`]); the logical
    /// operation counters are unaffected either way.
    pub fn enable_node_cache(&mut self, capacity: usize) {
        self.cache = if capacity > 0 && self.codec.supports_node_cache() {
            Some(NodeCache::new(capacity))
        } else {
            None
        };
    }

    /// Nodes currently held decoded in the plaintext cache.
    pub fn cached_nodes(&self) -> usize {
        self.cache.as_ref().map(NodeCache::len).unwrap_or(0)
    }

    /// Enables write-behind node re-sealing with room for `budget` dirty
    /// nodes (0 disables it). A mutated node then absorbs further
    /// mutations in plaintext above the crypto boundary and is physically
    /// re-enciphered only on budget pressure, [`BTree::flush`] or an
    /// explicit [`BTree::seal_all_deferred`]. Only effective for codecs
    /// implementing the write-behind hooks
    /// ([`NodeCodec::supports_write_behind`]); the logical operation
    /// counters are unaffected either way — each mutation is still charged
    /// its full encode profile at mutation time.
    pub fn enable_write_behind(&mut self, budget: usize) {
        self.wb = if budget > 0 && self.codec.supports_write_behind() {
            Some(WriteBehindSet::new(budget))
        } else {
            None
        };
    }

    /// Dirty nodes currently awaiting their physical seal.
    pub fn deferred_nodes(&self) -> usize {
        self.wb.as_ref().map(WriteBehindSet::len).unwrap_or(0)
    }

    /// Physically seals every deferred dirty node back to the store
    /// (counter-silent apart from `node_reseals`; the logical cost was
    /// charged per mutation).
    pub fn seal_all_deferred(&mut self) -> Result<(), TreeError> {
        while let Some((id, entry)) = self.wb.as_mut().and_then(WriteBehindSet::pop_victim) {
            self.seal_entry(id, &entry)?;
        }
        Ok(())
    }

    fn write_superblock(&mut self) -> Result<(), TreeError> {
        let mut page = vec![0u8; self.store.block_size()];
        {
            let mut w = PageWriter::new(&mut page);
            w.put_u64(SUPER_MAGIC).map_err(CodecError::from)?;
            w.put_u32(self.root.0).map_err(CodecError::from)?;
            w.put_u64(self.count).map_err(CodecError::from)?;
            w.put_u32(self.height).map_err(CodecError::from)?;
            w.put_u32(self.t as u32).map_err(CodecError::from)?;
            w.put_u64(self.stamp).map_err(CodecError::from)?;
            w.pad_remaining();
        }
        self.store.write_block(self.superblock, &page)?;
        Ok(())
    }

    /// The persisted application stamp (see the field docs).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Sets the application stamp; persisted by the next superblock
    /// write ([`BTree::flush`] always writes one).
    pub fn set_stamp(&mut self, stamp: u64) {
        self.stamp = stamp;
    }

    /// Persists metadata and flushes the store. Deferred dirty nodes are
    /// sealed first, so a flushed tree is fully enciphered on the medium.
    pub fn flush(&mut self) -> Result<(), TreeError> {
        self.seal_all_deferred()?;
        self.write_superblock()?;
        self.store.flush()?;
        Ok(())
    }

    // ---- node I/O ------------------------------------------------------

    /// Reads and fully materialises a node. With the plaintext cache
    /// enabled, a hit serves the decoded node from RAM while the codec
    /// replays a raw decode's exact logical counter profile
    /// ([`NodeCodec::decode_cached`]); a miss decodes the page once,
    /// counter-silently, fills the cache and replays the same profile —
    /// so range scans, update-path descents and validation walks report
    /// identical logical costs with the cache on or off.
    fn read_node(&self, id: BlockId) -> Result<Node, TreeError> {
        self.counters().bump(|c| &c.node_visits);
        // A write-behind node's disk page is stale: the dirty set is the
        // authoritative copy and must be consulted before cache and disk.
        // `decode_cached` replays the raw decode's exact logical cost.
        if let Some(entry) = self.wb.as_ref().and_then(|wb| wb.get(id)) {
            return Ok(self.codec.decode_cached(&entry)?);
        }
        let Some(cache) = &self.cache else {
            let t = self.counters().obs().start();
            let page = self.store.read_block_vec(id)?;
            let node = self.codec.decode(id, &page)?;
            self.counters().obs().stage(Stage::NodeUnseal, t);
            return Ok(node);
        };
        if let Some(entry) = cache.get(id) {
            self.counters().bump(|c| &c.node_cache_hits);
            return Ok(self.codec.decode_cached(&entry)?);
        }
        self.counters().bump(|c| &c.node_cache_misses);
        let t = self.counters().obs().start();
        let page = self.store.read_block_vec(id)?;
        let out = match self.codec.decode_for_cache(id, &page) {
            Ok(entry) => {
                let node = self.codec.decode_cached(&entry)?;
                cache.insert(id, entry);
                Ok(node)
            }
            // E.g. a page the cache hooks cannot represent: fall back to
            // the plain (counted) decode.
            Err(_) => Ok(self.codec.decode(id, &page)?),
        };
        self.counters().obs().stage(Stage::NodeUnseal, t);
        out
    }

    fn write_node(&mut self, node: &Node) -> Result<(), TreeError> {
        if let Some(cache) = &self.cache {
            // Re-encoding changes the page's version: the old decoding
            // must never serve another probe.
            cache.invalidate(node.id);
        }
        if self.wb.is_some() {
            // Defer the physical seal: charge the full logical encode
            // profile now (and surface every encode error — shape, key
            // domain, fit — at mutation time), park the plaintext entry,
            // and seal a clock-chosen cold node once over budget.
            let entry = self.codec.encode_to_cache(node, self.store.block_size())?;
            let wb = self.wb.as_mut().expect("checked above");
            wb.insert(node.id, entry);
            self.counters().bump(|c| &c.node_writes_deferred);
            while let Some((id, victim)) = self.wb.as_mut().and_then(|wb| {
                if wb.len() > wb.budget {
                    wb.pop_victim()
                } else {
                    None
                }
            }) {
                self.seal_entry(id, &victim)?;
            }
            return Ok(());
        }
        let t = self.counters().obs().start();
        let mut page = vec![0u8; self.store.block_size()];
        self.codec.encode(node, &mut page)?;
        self.store.write_block(node.id, &page)?;
        self.counters().obs().stage(Stage::NodeSeal, t);
        Ok(())
    }

    /// Physically enciphers one deferred entry back to the store. Apart
    /// from `node_reseals` this touches no counters — the logical encode
    /// cost was charged when the mutation was deferred.
    fn seal_entry(&mut self, id: BlockId, entry: &CachedNode) -> Result<(), TreeError> {
        let t = self.counters().obs().start();
        let mut page = vec![0u8; self.store.block_size()];
        self.codec.encode_from_cache(entry, &mut page)?;
        self.store.write_block(id, &page)?;
        self.counters().bump(|c| &c.node_reseals);
        self.counters().obs().stage(Stage::NodeSeal, t);
        Ok(())
    }

    fn allocate_node(&mut self) -> Result<BlockId, TreeError> {
        // Min-first allocation packs new nodes toward the front of the
        // device, keeping the tail reclaimable by the compaction pass.
        Ok(self.store.allocate_min()?)
    }

    fn free_node(&mut self, id: BlockId) -> Result<(), TreeError> {
        if let Some(wb) = &mut self.wb {
            // A freed node never needs its deferred seal; the plaintext is
            // zeroized when the last reference drops.
            wb.forget(id);
        }
        if let Some(cache) = &self.cache {
            cache.invalidate(id);
        }
        Ok(self.store.free(id)?)
    }

    // ---- accessors -----------------------------------------------------

    pub fn len(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Height in levels (1 = a single leaf root).
    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn root_id(&self) -> BlockId {
        self.root
    }

    /// Maximum keys per node (`2t − 1`).
    pub fn max_keys_per_node(&self) -> usize {
        2 * self.t - 1
    }

    /// CLRS minimum degree.
    pub fn min_degree(&self) -> usize {
        self.t
    }

    pub fn counters(&self) -> &OpCounters {
        self.store.counters()
    }

    pub fn store(&self) -> &S {
        &self.store
    }

    pub fn codec(&self) -> &C {
        &self.codec
    }

    /// Consumes the tree, flushing metadata and returning the store (for
    /// attack experiments that want the raw medium).
    pub fn into_store(mut self) -> Result<S, TreeError> {
        self.flush()?;
        Ok(self.store)
    }

    // ---- search --------------------------------------------------------

    /// Point lookup via raw-page probes — the paper's search path. Costs
    /// exactly the decryptions the codec's scheme requires per node
    /// *logically*; with the plaintext node cache enabled, a cached node
    /// serves the probe from RAM (zero physical decipherments) while the
    /// counters still record the same logical cost.
    pub fn get(&self, key: u64) -> Result<Option<RecordPtr>, TreeError> {
        let mut cur = self.root;
        loop {
            self.counters().bump(|c| &c.node_visits);
            match self.probe_node(cur, key)? {
                Probe::Found { data_ptr } => return Ok(Some(data_ptr)),
                Probe::Missing => return Ok(None),
                Probe::Descend { child } => cur = child,
            }
        }
    }

    /// One node visit of the search path: served from the plaintext cache
    /// on a hit, otherwise a raw-page probe that also fills the cache.
    fn probe_node(&self, id: BlockId, key: u64) -> Result<Probe, TreeError> {
        // Dirty-first, like `read_node`: the disk page of a write-behind
        // node is stale. `probe_cached` replays the raw probe's exact
        // logical cost.
        if let Some(entry) = self.wb.as_ref().and_then(|wb| wb.get(id)) {
            return Ok(self.codec.probe_cached(&entry, key)?);
        }
        let Some(cache) = &self.cache else {
            let page = self.store.read_block_vec(id)?;
            return Ok(self.codec.probe(id, &page, key)?);
        };
        if let Some(entry) = cache.get(id) {
            self.counters().bump(|c| &c.node_cache_hits);
            return Ok(self.codec.probe_cached(&entry, key)?);
        }
        self.counters().bump(|c| &c.node_cache_misses);
        let page = self.store.read_block_vec(id)?;
        let probe = self.codec.probe(id, &page, key)?;
        // Fill for the next probe. Decoding is counter-silent (physical
        // work, not a logical operation); a decode failure — e.g. a
        // corrupt entry the probe never crossed — just skips the fill.
        if let Ok(entry) = self.codec.decode_for_cache(id, &page) {
            cache.insert(id, entry);
        }
        Ok(probe)
    }

    /// `true` iff the key is present.
    pub fn contains(&self, key: u64) -> Result<bool, TreeError> {
        Ok(self.get(key)?.is_some())
    }

    // ---- insert --------------------------------------------------------

    /// Inserts (or replaces) `key → ptr`. Returns the previous pointer when
    /// the key was already present.
    pub fn insert(&mut self, key: u64, ptr: RecordPtr) -> Result<Option<RecordPtr>, TreeError> {
        let root_node = self.read_node(self.root)?;
        let root_node = if root_node.n() == self.max_keys_per_node() {
            // Grow upward: new root over the old one, then split.
            let new_root_id = self.allocate_node()?;
            let mut new_root = Node {
                id: new_root_id,
                keys: Vec::new(),
                data_ptrs: Vec::new(),
                children: vec![self.root],
            };
            self.split_child(&mut new_root, 0)?;
            self.write_node(&new_root)?;
            self.root = new_root_id;
            self.height += 1;
            new_root
        } else {
            root_node
        };
        let res = self.insert_nonfull(root_node, key, ptr)?;
        self.write_superblock()?;
        Ok(res)
    }

    /// Splits the full child at slot `i` of `parent`. Writes both child
    /// halves; the caller is responsible for writing `parent`.
    fn split_child(&mut self, parent: &mut Node, i: usize) -> Result<(), TreeError> {
        let t = self.t;
        let mut child = self.read_node(parent.children[i])?;
        debug_assert_eq!(child.n(), 2 * t - 1, "split requires a full child");
        let right_id = self.allocate_node()?;
        let right = Node {
            id: right_id,
            keys: child.keys.split_off(t),
            data_ptrs: child.data_ptrs.split_off(t),
            children: if child.is_leaf() {
                Vec::new()
            } else {
                child.children.split_off(t)
            },
        };
        let median_key = child.keys.pop().expect("t-1 keys remain after pop");
        let median_ptr = child.data_ptrs.pop().expect("t-1 ptrs remain after pop");
        parent.keys.insert(i, median_key);
        parent.data_ptrs.insert(i, median_ptr);
        parent.children.insert(i + 1, right_id);
        self.write_node(&child)?;
        self.write_node(&right)?;
        self.counters().bump(|c| &c.splits);
        Ok(())
    }

    fn insert_nonfull(
        &mut self,
        mut node: Node,
        key: u64,
        ptr: RecordPtr,
    ) -> Result<Option<RecordPtr>, TreeError> {
        debug_assert!(node.n() < self.max_keys_per_node());
        loop {
            match node.search(key) {
                NodeSearch::Here(i) => {
                    let old = node.data_ptrs[i];
                    node.data_ptrs[i] = ptr;
                    self.write_node(&node)?;
                    return Ok(Some(old));
                }
                NodeSearch::Child(i) => {
                    if node.is_leaf() {
                        node.keys.insert(i, key);
                        node.data_ptrs.insert(i, ptr);
                        self.write_node(&node)?;
                        self.count += 1;
                        return Ok(None);
                    }
                    let child = self.read_node(node.children[i])?;
                    if child.n() == self.max_keys_per_node() {
                        self.split_child(&mut node, i)?;
                        self.write_node(&node)?;
                        // The promoted median may be the key itself.
                        match key.cmp(&node.keys[i]) {
                            std::cmp::Ordering::Equal => {
                                let old = node.data_ptrs[i];
                                node.data_ptrs[i] = ptr;
                                self.write_node(&node)?;
                                return Ok(Some(old));
                            }
                            std::cmp::Ordering::Greater => {
                                node = self.read_node(node.children[i + 1])?;
                            }
                            std::cmp::Ordering::Less => {
                                node = self.read_node(node.children[i])?;
                            }
                        }
                    } else {
                        node = child;
                    }
                }
            }
        }
    }

    /// Repoints an *existing* key at a new data pointer without touching
    /// the tree structure (no splits, no balancing) — the record-store
    /// compactor uses this after rewriting a record into a fresh block.
    /// Returns the previous pointer, or `None` (and changes nothing) when
    /// the key is absent.
    pub fn replace_ptr(
        &mut self,
        key: u64,
        ptr: RecordPtr,
    ) -> Result<Option<RecordPtr>, TreeError> {
        let mut node = self.read_node(self.root)?;
        loop {
            match node.search(key) {
                NodeSearch::Here(i) => {
                    let old = node.data_ptrs[i];
                    node.data_ptrs[i] = ptr;
                    self.write_node(&node)?;
                    return Ok(Some(old));
                }
                NodeSearch::Child(i) => {
                    if node.is_leaf() {
                        return Ok(None);
                    }
                    node = self.read_node(node.children[i])?;
                }
            }
        }
    }

    // ---- node-device compaction ----------------------------------------

    /// Moves the live node at `from` into the free block `to` (claimed off
    /// the store's free list), repointing its parent — or the tree root —
    /// and freeing `from`. The node is re-encoded at its new id by the
    /// normal write path, so position-keyed codecs re-seal it under the
    /// destination page's key material. O(height): the parent is found by
    /// descending from the root toward one of the moved node's own keys
    /// (keys are unique across the tree, so the descent cannot stray).
    pub fn relocate_node(&mut self, from: BlockId, to: BlockId) -> Result<(), TreeError> {
        if from == self.superblock {
            return Err(TreeError::Invalid("cannot relocate the superblock".into()));
        }
        let mut node = self.read_node(from)?;
        if from == self.root {
            self.store.claim_free(to)?;
            node.id = to;
            self.write_node(&node)?;
            self.root = to;
            self.free_node(from)?;
            self.write_superblock()?;
            self.counters().bump(|c| &c.compact_moved_nodes);
            return Ok(());
        }
        let Some(&guide) = node.keys.first() else {
            return Err(TreeError::Invalid(format!(
                "non-root node {from} has no keys"
            )));
        };
        // Locate the parent before mutating anything.
        let mut cur = self.read_node(self.root)?;
        loop {
            let i = match cur.search(guide) {
                NodeSearch::Child(i) => i,
                NodeSearch::Here(_) => {
                    return Err(TreeError::Invalid(format!(
                        "key {guide} of node {from} duplicated in ancestor {}",
                        cur.id
                    )))
                }
            };
            if cur.is_leaf() {
                return Err(TreeError::Invalid(format!(
                    "node {from} is unreachable from the root"
                )));
            }
            if cur.children[i] == from {
                self.store.claim_free(to)?;
                node.id = to;
                self.write_node(&node)?;
                cur.children[i] = to;
                self.write_node(&cur)?;
                self.free_node(from)?;
                self.counters().bump(|c| &c.compact_moved_nodes);
                return Ok(());
            }
            cur = self.read_node(cur.children[i])?;
        }
    }

    /// One bounded sliding pass of node-device compaction: up to
    /// `max_moves` times, the highest-numbered live node slides into the
    /// lowest free slot, then every freed block at the device tail is
    /// released ([`BlockStore::truncate_free_tail`]) so a shrunken dataset
    /// stops pinning the node device at its high-water mark. Returns
    /// `(nodes moved, tail blocks released)`.
    pub fn compact_nodes(&mut self, max_moves: usize) -> Result<(u64, u32), TreeError> {
        // One snapshot of the free set, updated incrementally per move
        // (each move frees `hi` and claims `min_free`), so the pass costs
        // O(num_blocks + free + moves) instead of re-scanning the device
        // per move — this runs under the partition write lock.
        let mut free: std::collections::BTreeSet<u32> =
            self.store.free_block_ids().into_iter().collect();
        let mut hi = self.store.num_blocks();
        let mut moved = 0u64;
        while (moved as usize) < max_moves {
            let Some(&min_free) = free.first() else {
                break;
            };
            let hi_live = loop {
                if hi == 0 {
                    break None;
                }
                hi -= 1;
                if !free.contains(&hi) {
                    break Some(hi);
                }
            };
            let Some(hi_live) = hi_live else { break };
            // Packed already (or only the superblock remains): done.
            if min_free >= hi_live || BlockId(hi_live) == self.superblock {
                break;
            }
            self.relocate_node(BlockId(hi_live), BlockId(min_free))?;
            free.remove(&min_free);
            free.insert(hi_live);
            moved += 1;
        }
        let truncated = self.store.truncate_free_tail()?;
        Ok((moved, truncated))
    }

    // ---- delete --------------------------------------------------------

    /// Removes `key`, returning its data pointer if it was present.
    pub fn delete(&mut self, key: u64) -> Result<Option<RecordPtr>, TreeError> {
        let root_node = self.read_node(self.root)?;
        let result = self.delete_from(root_node, key)?;
        // Shrink the root if it became an empty internal node.
        let root_node = self.read_node(self.root)?;
        if root_node.n() == 0 && !root_node.is_leaf() {
            let old_root = self.root;
            self.root = root_node.children[0];
            self.free_node(old_root)?;
            self.height -= 1;
        }
        self.write_superblock()?;
        Ok(result)
    }

    fn delete_from(&mut self, mut node: Node, key: u64) -> Result<Option<RecordPtr>, TreeError> {
        match node.search(key) {
            NodeSearch::Here(i) => {
                if node.is_leaf() {
                    let _ = node.keys.remove(i);
                    let old = node.data_ptrs.remove(i);
                    self.write_node(&node)?;
                    self.count -= 1;
                    return Ok(Some(old));
                }
                let left_id = node.children[i];
                let right_id = node.children[i + 1];
                let left = self.read_node(left_id)?;
                if left.n() >= self.t {
                    // Replace with predecessor, then delete it below.
                    let (pk, pp) = self.max_entry_under(left)?;
                    let old = node.data_ptrs[i];
                    node.keys[i] = pk;
                    node.data_ptrs[i] = pp;
                    self.write_node(&node)?;
                    let next = self.read_node(left_id)?;
                    let removed = self.delete_from(next, pk)?;
                    debug_assert!(removed.is_some());
                    return Ok(Some(old));
                }
                let right = self.read_node(right_id)?;
                if right.n() >= self.t {
                    let (sk, sp) = self.min_entry_under(right)?;
                    let old = node.data_ptrs[i];
                    node.keys[i] = sk;
                    node.data_ptrs[i] = sp;
                    self.write_node(&node)?;
                    let next = self.read_node(right_id)?;
                    let removed = self.delete_from(next, sk)?;
                    debug_assert!(removed.is_some());
                    return Ok(Some(old));
                }
                // Both children minimal: merge around the key, then recurse.
                self.merge_children(&mut node, i)?;
                let merged = self.read_node(node.children[i])?;
                self.delete_from(merged, key)
            }
            NodeSearch::Child(i) => {
                if node.is_leaf() {
                    return Ok(None); // absent
                }
                let child = self.read_node(node.children[i])?;
                let child = if child.n() < self.t {
                    self.fill_child(&mut node, i, child)?
                } else {
                    child
                };
                self.delete_from(child, key)
            }
        }
    }

    /// Ensures the child being descended into has at least `t` keys, by
    /// borrowing from a sibling or merging. Returns the node to descend
    /// into (which may be a merged node at a different slot).
    fn fill_child(
        &mut self,
        parent: &mut Node,
        i: usize,
        mut child: Node,
    ) -> Result<Node, TreeError> {
        debug_assert_eq!(child.n(), self.t - 1);
        // Borrow from the left sibling.
        if i > 0 {
            let mut left = self.read_node(parent.children[i - 1])?;
            if left.n() >= self.t {
                child.keys.insert(0, parent.keys[i - 1]);
                child.data_ptrs.insert(0, parent.data_ptrs[i - 1]);
                parent.keys[i - 1] = left.keys.pop().expect("left has >= t keys");
                parent.data_ptrs[i - 1] = left.data_ptrs.pop().expect("left has >= t ptrs");
                if !left.is_leaf() {
                    let moved = left.children.pop().expect("internal left has children");
                    child.children.insert(0, moved);
                }
                self.write_node(&left)?;
                self.write_node(&child)?;
                self.write_node(parent)?;
                self.counters().bump(|c| &c.borrows);
                return Ok(child);
            }
        }
        // Borrow from the right sibling.
        if i + 1 < parent.children.len() {
            let mut right = self.read_node(parent.children[i + 1])?;
            if right.n() >= self.t {
                child.keys.push(parent.keys[i]);
                child.data_ptrs.push(parent.data_ptrs[i]);
                parent.keys[i] = right.keys.remove(0);
                parent.data_ptrs[i] = right.data_ptrs.remove(0);
                if !right.is_leaf() {
                    child.children.push(right.children.remove(0));
                }
                self.write_node(&right)?;
                self.write_node(&child)?;
                self.write_node(parent)?;
                self.counters().bump(|c| &c.borrows);
                return Ok(child);
            }
        }
        // Merge with a sibling.
        if i > 0 {
            self.merge_children(parent, i - 1)?;
            self.read_node(parent.children[i - 1])
        } else {
            self.merge_children(parent, i)?;
            self.read_node(parent.children[i])
        }
    }

    /// Merges `children[i]`, separator key `i`, and `children[i+1]` into a
    /// single node at slot `i`. Writes the merged child and the parent;
    /// frees the right child's block.
    fn merge_children(&mut self, parent: &mut Node, i: usize) -> Result<(), TreeError> {
        let mut left = self.read_node(parent.children[i])?;
        let right = self.read_node(parent.children[i + 1])?;
        left.keys.push(parent.keys.remove(i));
        left.data_ptrs.push(parent.data_ptrs.remove(i));
        left.keys.extend_from_slice(&right.keys);
        left.data_ptrs.extend_from_slice(&right.data_ptrs);
        left.children.extend_from_slice(&right.children);
        parent.children.remove(i + 1);
        self.write_node(&left)?;
        self.write_node(parent)?;
        self.free_node(right.id)?;
        self.counters().bump(|c| &c.merges);
        Ok(())
    }

    /// Largest `(key, ptr)` in the subtree rooted at `node`.
    fn max_entry_under(&self, mut node: Node) -> Result<(u64, RecordPtr), TreeError> {
        loop {
            if node.is_leaf() {
                let i = node.n() - 1;
                return Ok((node.keys[i], node.data_ptrs[i]));
            }
            let last = *node.children.last().expect("internal node has children");
            node = self.read_node(last)?;
        }
    }

    /// Smallest `(key, ptr)` in the subtree rooted at `node`.
    fn min_entry_under(&self, mut node: Node) -> Result<(u64, RecordPtr), TreeError> {
        loop {
            if node.is_leaf() {
                return Ok((node.keys[0], node.data_ptrs[0]));
            }
            node = self.read_node(node.children[0])?;
        }
    }

    /// Smallest entry in the tree.
    pub fn first(&self) -> Result<Option<(u64, RecordPtr)>, TreeError> {
        if self.is_empty() {
            return Ok(None);
        }
        let root = self.read_node(self.root)?;
        self.min_entry_under(root).map(Some)
    }

    /// Largest entry in the tree.
    pub fn last(&self) -> Result<Option<(u64, RecordPtr)>, TreeError> {
        if self.is_empty() {
            return Ok(None);
        }
        let root = self.read_node(self.root)?;
        self.max_entry_under(root).map(Some)
    }

    // ---- range scans ---------------------------------------------------

    /// Streaming range scan: yields every `(key, ptr)` pair with
    /// `lo <= key <= hi` in key order *without* materialising the result —
    /// memory stays O(tree height) however wide the range. This is the
    /// operation §1 motivates and §4.3 preserves: whole-subtree access
    /// works because triplet *positions* are never based on disguised
    /// values. Node visits go through the plaintext node cache when
    /// enabled (identical logical counters either way).
    pub fn iter_range(&self, lo: u64, hi: u64) -> RangeIter<'_, S, C> {
        let mut iter = RangeIter {
            tree: self,
            stack: Vec::new(),
            lo,
            hi,
            pending_err: None,
        };
        if lo <= hi && !self.is_empty() {
            iter.push_node(self.root);
        }
        iter
    }

    /// Collects all `(key, ptr)` pairs with `lo <= key <= hi`, in key
    /// order. Convenience over [`BTree::iter_range`] for small ranges;
    /// large scans should iterate.
    pub fn range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, RecordPtr)>, TreeError> {
        self.iter_range(lo, hi).collect()
    }

    /// Full ordered scan (see [`BTree::iter_range`] for the streaming
    /// form).
    pub fn scan_all(&self) -> Result<Vec<(u64, RecordPtr)>, TreeError> {
        self.range(0, u64::MAX)
    }

    // ---- validation ----------------------------------------------------

    /// Exhaustively checks structural invariants: shape, strict key order,
    /// separator bounds, uniform leaf depth, minimum fill, and that the
    /// entry count matches the metadata.
    pub fn validate(&self) -> Result<(), TreeError> {
        let mut counted = 0u64;
        let mut leaf_depth: Option<u32> = None;
        self.validate_walk(
            self.root,
            None,
            None,
            1,
            true,
            &mut counted,
            &mut leaf_depth,
        )?;
        if counted != self.count {
            return Err(TreeError::Invalid(format!(
                "metadata count {} != walked count {counted}",
                self.count
            )));
        }
        if let Some(d) = leaf_depth {
            if d != self.height {
                return Err(TreeError::Invalid(format!(
                    "metadata height {} != leaf depth {d}",
                    self.height
                )));
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn validate_walk(
        &self,
        id: BlockId,
        lower: Option<u64>,
        upper: Option<u64>,
        depth: u32,
        is_root: bool,
        counted: &mut u64,
        leaf_depth: &mut Option<u32>,
    ) -> Result<(), TreeError> {
        let node = self.read_node(id)?;
        node.check_shape().map_err(TreeError::Invalid)?;
        node.check_sorted().map_err(TreeError::Invalid)?;
        if !is_root && node.n() < self.t - 1 {
            return Err(TreeError::Invalid(format!(
                "node {id} underfull: {} < {}",
                node.n(),
                self.t - 1
            )));
        }
        if node.n() > self.max_keys_per_node() {
            return Err(TreeError::Invalid(format!(
                "node {id} overfull: {} > {}",
                node.n(),
                self.max_keys_per_node()
            )));
        }
        for &k in &node.keys {
            if let Some(lo) = lower {
                if k <= lo {
                    return Err(TreeError::Invalid(format!(
                        "node {id}: key {k} <= separator lower bound {lo}"
                    )));
                }
            }
            if let Some(hi) = upper {
                if k >= hi {
                    return Err(TreeError::Invalid(format!(
                        "node {id}: key {k} >= separator upper bound {hi}"
                    )));
                }
            }
        }
        *counted += node.n() as u64;
        if node.is_leaf() {
            match *leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) if d != depth => {
                    return Err(TreeError::Invalid(format!(
                        "leaves at different depths: {d} and {depth}"
                    )))
                }
                _ => {}
            }
            return Ok(());
        }
        for i in 0..node.children.len() {
            let lo = if i == 0 {
                lower
            } else {
                Some(node.keys[i - 1])
            };
            let hi = if i == node.n() {
                upper
            } else {
                Some(node.keys[i])
            };
            self.validate_walk(
                node.children[i],
                lo,
                hi,
                depth + 1,
                false,
                counted,
                leaf_depth,
            )?;
        }
        Ok(())
    }

    /// Reads a node for inspection (rendering, attack setup). Public but
    /// not part of the data-path API.
    pub fn inspect_node(&self, id: BlockId) -> Result<Node, TreeError> {
        self.read_node(id)
    }
}

/// One in-flight node of a [`RangeIter`]: the decoded node plus the next
/// event index. For an internal node with `n` keys the events are
/// `child₀, key₀, child₁, key₁, …, childₙ` (event `2i` = descend child
/// `i`, event `2i+1` = yield key `i`); a leaf's events are just its keys.
struct RangeFrame {
    node: Node,
    event: usize,
}

/// Streaming in-order range iterator over a [`BTree`] (see
/// [`BTree::iter_range`]). Holds at most one decoded node per tree level;
/// errors are yielded once and end the iteration.
pub struct RangeIter<'a, S: BlockStore, C: NodeCodec> {
    tree: &'a BTree<S, C>,
    stack: Vec<RangeFrame>,
    lo: u64,
    hi: u64,
    /// A node-read failure, yielded exactly once before iteration ends —
    /// including one hit while positioning on the root, so `range()` and
    /// `scan_all()` surface it instead of returning an empty result.
    pending_err: Option<TreeError>,
}

impl<S: BlockStore, C: NodeCodec> RangeIter<'_, S, C> {
    /// Reads `id` and pushes it positioned at its first in-range event.
    fn push_node(&mut self, id: BlockId) {
        match self.tree.read_node(id) {
            Ok(node) => {
                // First key index i with keys[i] >= lo. Child i (spanning
                // strictly below keys[i]) can hold in-range entries only
                // when keys[i] > lo, matching the recursive walk's
                // `i == n || keys[i] > lo` descend predicate exactly.
                let i = node.keys.partition_point(|&k| k < self.lo);
                let event = if node.is_leaf() {
                    i
                } else if i < node.n() && node.keys[i] == self.lo {
                    2 * i + 1
                } else {
                    2 * i
                };
                self.stack.push(RangeFrame { node, event });
            }
            Err(e) => {
                self.stack.clear();
                self.pending_err = Some(e);
            }
        }
    }
}

impl<S: BlockStore, C: NodeCodec> Iterator for RangeIter<'_, S, C> {
    type Item = Result<(u64, RecordPtr), TreeError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending_err.take() {
                return Some(Err(e));
            }
            let frame = self.stack.last_mut()?;
            let node = &frame.node;
            let n = node.n();
            if node.is_leaf() {
                let i = frame.event;
                if i < n && node.keys[i] <= self.hi {
                    frame.event += 1;
                    return Some(Ok((node.keys[i], node.data_ptrs[i])));
                }
                self.stack.pop();
                continue;
            }
            let e = frame.event;
            if e > 2 * n {
                self.stack.pop();
                continue;
            }
            frame.event += 1;
            if e % 2 == 1 {
                // Key event.
                let i = (e - 1) / 2;
                if node.keys[i] > self.hi {
                    self.stack.pop();
                    continue;
                }
                return Some(Ok((node.keys[i], node.data_ptrs[i])));
            }
            // Child event: child i spans the open interval
            // (keys[i-1], keys[i]); descend only if it intersects [lo, hi].
            let i = e / 2;
            if i > 0 && node.keys[i - 1] >= self.hi {
                self.stack.pop();
                continue;
            }
            let child = node.children[i];
            self.push_node(child);
            // A failed push left pending_err set; the loop head yields it.
        }
    }
}
