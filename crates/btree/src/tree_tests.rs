//! Exhaustive tests of the B-tree over the plaintext codec. (The enciphered
//! codecs get the same treatment in `sks-core`, reusing these behaviours.)

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sks_storage::{BlockId, BlockStore, MemDisk, OpCounters};

use crate::codec::PlainCodec;
use crate::node::RecordPtr;
use crate::tree::{BTree, TreeError};

fn make_tree(block_size: usize) -> BTree<MemDisk, PlainCodec> {
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(block_size, counters.clone());
    BTree::create(disk, PlainCodec::new(counters)).unwrap()
}

#[test]
fn empty_tree_properties() {
    let tree = make_tree(256);
    assert!(tree.is_empty());
    assert_eq!(tree.len(), 0);
    assert_eq!(tree.height(), 1);
    assert_eq!(tree.get(42).unwrap(), None);
    assert_eq!(tree.first().unwrap(), None);
    assert_eq!(tree.last().unwrap(), None);
    assert!(tree.scan_all().unwrap().is_empty());
    tree.validate().unwrap();
}

#[test]
fn insert_and_get_sequential() {
    let mut tree = make_tree(256);
    for k in 0..500u64 {
        assert_eq!(tree.insert(k, RecordPtr(k * 10)).unwrap(), None);
    }
    assert_eq!(tree.len(), 500);
    for k in 0..500u64 {
        assert_eq!(tree.get(k).unwrap(), Some(RecordPtr(k * 10)), "key {k}");
    }
    assert_eq!(tree.get(500).unwrap(), None);
    assert!(tree.height() > 1, "tree must have split");
    tree.validate().unwrap();
}

#[test]
fn insert_reverse_and_shuffled() {
    for seed in 0..3u64 {
        let mut tree = make_tree(256);
        let mut keys: Vec<u64> = (0..400).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        tree.validate().unwrap();
        let scanned: Vec<u64> = tree.scan_all().unwrap().iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = (0..400).collect();
        assert_eq!(scanned, want, "seed {seed}");
    }
}

#[test]
fn upsert_replaces_pointer() {
    let mut tree = make_tree(256);
    assert_eq!(tree.insert(7, RecordPtr(1)).unwrap(), None);
    assert_eq!(tree.insert(7, RecordPtr(2)).unwrap(), Some(RecordPtr(1)));
    assert_eq!(tree.len(), 1, "upsert must not double-count");
    assert_eq!(tree.get(7).unwrap(), Some(RecordPtr(2)));
    tree.validate().unwrap();
}

#[test]
fn upsert_at_full_node_boundary() {
    // Replacing a key that is the promoted median of a split exercises the
    // equal-median path in insert_nonfull.
    let mut tree = make_tree(256);
    let max = tree.max_keys_per_node() as u64;
    for k in 0..max * 4 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    for k in 0..max * 4 {
        assert_eq!(
            tree.insert(k, RecordPtr(k + 1000)).unwrap(),
            Some(RecordPtr(k))
        );
    }
    assert_eq!(tree.len(), max * 4);
    tree.validate().unwrap();
}

#[test]
fn delete_from_leaf_simple() {
    let mut tree = make_tree(256);
    for k in [10u64, 20, 30] {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    assert_eq!(tree.delete(20).unwrap(), Some(RecordPtr(20)));
    assert_eq!(tree.delete(20).unwrap(), None);
    assert_eq!(tree.len(), 2);
    assert_eq!(tree.get(20).unwrap(), None);
    assert_eq!(tree.get(10).unwrap(), Some(RecordPtr(10)));
    tree.validate().unwrap();
}

#[test]
fn delete_everything_ascending_and_descending() {
    for ascending in [true, false] {
        let mut tree = make_tree(256);
        let n = 300u64;
        for k in 0..n {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        let order: Vec<u64> = if ascending {
            (0..n).collect()
        } else {
            (0..n).rev().collect()
        };
        for (i, &k) in order.iter().enumerate() {
            assert_eq!(tree.delete(k).unwrap(), Some(RecordPtr(k)), "delete {k}");
            if i % 37 == 0 {
                tree.validate().unwrap();
            }
        }
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1, "tree must shrink back to a single leaf");
        tree.validate().unwrap();
    }
}

#[test]
fn delete_random_interleaved_with_inserts() {
    let mut tree = make_tree(256);
    let mut rng = StdRng::seed_from_u64(99);
    let mut model = std::collections::BTreeMap::new();
    for round in 0..2000u64 {
        let k = rng.gen_range(0..500u64);
        if rng.gen_bool(0.6) {
            let expected = model.insert(k, k + round);
            let got = tree.insert(k, RecordPtr(k + round)).unwrap();
            assert_eq!(got.map(|p| p.0), expected, "insert {k} round {round}");
        } else {
            let expected = model.remove(&k);
            let got = tree.delete(k).unwrap();
            assert_eq!(got.map(|p| p.0), expected, "delete {k} round {round}");
        }
        if round % 250 == 0 {
            tree.validate().unwrap();
        }
    }
    tree.validate().unwrap();
    assert_eq!(tree.len(), model.len() as u64);
    let scanned: Vec<(u64, u64)> = tree
        .scan_all()
        .unwrap()
        .iter()
        .map(|&(k, p)| (k, p.0))
        .collect();
    let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(scanned, want);
}

#[test]
fn range_queries_match_model() {
    let mut tree = make_tree(256);
    let keys: Vec<u64> = (0..300).map(|i| i * 3).collect(); // 0,3,6,...
    for &k in &keys {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    for (lo, hi) in [
        (0u64, 0u64),
        (1, 2),
        (0, 897),
        (10, 100),
        (450, 460),
        (897, 2000),
        (5, 5),
        (6, 6),
    ] {
        let got: Vec<u64> = tree
            .range(lo, hi)
            .unwrap()
            .iter()
            .map(|&(k, _)| k)
            .collect();
        let want: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&k| k >= lo && k <= hi)
            .collect();
        assert_eq!(got, want, "range [{lo}, {hi}]");
    }
    // Inverted range is empty.
    assert!(tree.range(10, 5).unwrap().is_empty());
}

#[test]
fn first_and_last() {
    let mut tree = make_tree(256);
    for k in [50u64, 10, 90, 30, 70] {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    assert_eq!(tree.first().unwrap(), Some((10, RecordPtr(10))));
    assert_eq!(tree.last().unwrap(), Some((90, RecordPtr(90))));
}

#[test]
fn persistence_across_reopen() {
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(256, counters.clone());
    let mut tree = BTree::create(disk, PlainCodec::new(counters.clone())).unwrap();
    for k in 0..100u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    let store = tree.into_store().unwrap();
    let tree = BTree::open(store, PlainCodec::new(counters)).unwrap();
    assert_eq!(tree.len(), 100);
    for k in 0..100u64 {
        assert_eq!(tree.get(k).unwrap(), Some(RecordPtr(k)));
    }
    tree.validate().unwrap();
}

#[test]
fn range_scan_surfaces_unreadable_pages_as_errors() {
    // A corrupt page anywhere on the scan path — the root included —
    // must yield an Err, never a silently shortened (or empty) result:
    // the engine's checkpoint snapshot and the compactor's reverse map
    // both trust this scan.
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(256, counters.clone());
    let mut tree = BTree::create(disk, PlainCodec::new(counters.clone())).unwrap();
    for k in 0..300u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    let root = tree.root_id();
    let mut store = tree.into_store().unwrap();
    store.write_block(root, &[0xEE; 256]).unwrap();
    let tree = BTree::open(store, PlainCodec::new(counters)).unwrap();
    assert!(tree.range(0, u64::MAX).is_err(), "corrupt root must error");
    let items: Vec<_> = tree.iter_range(0, u64::MAX).collect();
    assert_eq!(items.len(), 1, "exactly one error item, then termination");
    assert!(items[0].is_err());
}

#[test]
fn open_rejects_garbage_superblock() {
    let mut disk = MemDisk::new(256);
    let b = disk.allocate().unwrap();
    disk.write_block(b, &[0xAB; 256]).unwrap();
    let counters = disk.counters().clone();
    assert!(matches!(
        BTree::open(disk, PlainCodec::new(counters)),
        Err(TreeError::Codec(_))
    ));
}

#[test]
fn create_rejects_tiny_pages() {
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(32, counters.clone());
    assert!(matches!(
        BTree::create(disk, PlainCodec::new(counters)),
        Err(TreeError::PageTooSmall { .. })
    ));
}

#[test]
fn height_grows_logarithmically() {
    let mut tree = make_tree(128); // small pages -> small fanout
    for k in 0..1000u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    tree.validate().unwrap();
    let t = tree.min_degree() as f64;
    let bound = ((1000f64).ln() / t.ln()).ceil() as u32 + 2;
    assert!(
        tree.height() <= bound,
        "height {} exceeds O(log_t n) bound {bound}",
        tree.height()
    );
}

#[test]
fn splits_and_merges_are_counted() {
    let mut tree = make_tree(128);
    for k in 0..200u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    let s = tree.counters().snapshot();
    assert!(s.splits > 0, "insertions at this scale must split");
    for k in 0..200u64 {
        tree.delete(k).unwrap();
    }
    let s = tree.counters().snapshot();
    assert!(s.merges > 0, "deletions at this scale must merge");
}

#[test]
fn freed_blocks_are_reused_after_merges() {
    let mut tree = make_tree(128);
    for k in 0..500u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    let peak = tree.store().num_blocks();
    for k in 100..500u64 {
        tree.delete(k).unwrap();
    }
    for k in 100..500u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    tree.validate().unwrap();
    // Reinsertion must largely reuse freed blocks rather than keep growing.
    let after = tree.store().num_blocks();
    assert!(
        after <= peak + peak / 4,
        "block leak: peak {peak}, after churn {after}"
    );
}

#[test]
fn duplicate_monotonic_pointers_data_integrity() {
    // Pointer payloads unrelated to keys survive splits/merges unchanged.
    let mut tree = make_tree(256);
    for k in 0..300u64 {
        tree.insert(k, RecordPtr(u64::MAX - k)).unwrap();
    }
    for k in (0..300u64).step_by(3) {
        tree.delete(k).unwrap();
    }
    for k in 0..300u64 {
        let want = if k % 3 == 0 {
            None
        } else {
            Some(RecordPtr(u64::MAX - k))
        };
        assert_eq!(tree.get(k).unwrap(), want, "key {k}");
    }
}

#[test]
fn extreme_keys() {
    let mut tree = make_tree(256);
    for k in [0u64, 1, u64::MAX, u64::MAX - 1, u64::MAX / 2] {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    assert_eq!(tree.get(u64::MAX).unwrap(), Some(RecordPtr(u64::MAX)));
    assert_eq!(tree.get(0).unwrap(), Some(RecordPtr(0)));
    let all: Vec<u64> = tree.scan_all().unwrap().iter().map(|&(k, _)| k).collect();
    assert_eq!(all, vec![0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
    tree.validate().unwrap();
}

#[test]
fn inspect_node_exposes_root() {
    let mut tree = make_tree(256);
    tree.insert(5, RecordPtr(5)).unwrap();
    let root = tree.inspect_node(tree.root_id()).unwrap();
    assert_eq!(root.keys, vec![5]);
    assert_eq!(root.id, BlockId(1), "root allocated after superblock");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_matches_btreemap_model(
        ops in proptest::collection::vec((any::<bool>(), 0u64..200), 1..300),
        block_size in prop_oneof![Just(128usize), Just(256), Just(512)],
    ) {
        let counters = OpCounters::new();
        let disk = MemDisk::with_counters(block_size, counters.clone());
        let mut tree = BTree::create(disk, PlainCodec::new(counters)).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (i, &(is_insert, k)) in ops.iter().enumerate() {
            if is_insert {
                let want = model.insert(k, i as u64);
                let got = tree.insert(k, RecordPtr(i as u64)).unwrap();
                prop_assert_eq!(got.map(|p| p.0), want);
            } else {
                let want = model.remove(&k);
                let got = tree.delete(k).unwrap();
                prop_assert_eq!(got.map(|p| p.0), want);
            }
        }
        tree.validate().unwrap();
        prop_assert_eq!(tree.len(), model.len() as u64);
        let scanned: Vec<(u64, u64)> =
            tree.scan_all().unwrap().iter().map(|&(k, p)| (k, p.0)).collect();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, want);
    }

    #[test]
    fn prop_range_equals_filtered_scan(
        keys in proptest::collection::btree_set(0u64..1000, 0..120),
        lo in 0u64..1000,
        width in 0u64..500,
    ) {
        let mut tree = make_tree(256);
        for &k in &keys {
            tree.insert(k, RecordPtr(k)).unwrap();
        }
        let hi = lo.saturating_add(width);
        let got: Vec<u64> = tree.range(lo, hi).unwrap().iter().map(|&(k, _)| k).collect();
        let want: Vec<u64> = keys.iter().copied().filter(|&k| k >= lo && k <= hi).collect();
        prop_assert_eq!(got, want);
    }
}

// ---- bulk loading --------------------------------------------------------

fn bulk(items: &[(u64, u64)], block_size: usize) -> BTree<MemDisk, PlainCodec> {
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(block_size, counters.clone());
    let pairs: Vec<(u64, RecordPtr)> = items.iter().map(|&(k, p)| (k, RecordPtr(p))).collect();
    BTree::bulk_load(disk, PlainCodec::new(counters), &pairs).unwrap()
}

#[test]
fn bulk_load_empty_and_tiny() {
    let tree = bulk(&[], 256);
    assert!(tree.is_empty());
    tree.validate().unwrap();

    let tree = bulk(&[(5, 50)], 256);
    assert_eq!(tree.len(), 1);
    assert_eq!(tree.get(5).unwrap(), Some(RecordPtr(50)));
    tree.validate().unwrap();
}

#[test]
fn bulk_load_matches_insert_built_tree_contents() {
    for n in [1u64, 7, 20, 100, 500, 2_000] {
        let items: Vec<(u64, u64)> = (0..n).map(|k| (k * 3, k)).collect();
        let tree = bulk(&items, 256);
        assert_eq!(tree.len(), n, "n={n}");
        tree.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
        let scanned: Vec<(u64, u64)> = tree
            .scan_all()
            .unwrap()
            .iter()
            .map(|&(k, p)| (k, p.0))
            .collect();
        assert_eq!(scanned, items, "n={n}");
        // Spot lookups.
        assert_eq!(tree.get(0).unwrap(), Some(RecordPtr(0)));
        assert_eq!(tree.get(3 * (n - 1)).unwrap(), Some(RecordPtr(n - 1)));
        assert_eq!(tree.get(3 * n + 1).unwrap(), None);
    }
}

#[test]
fn bulk_load_rejects_unsorted_or_duplicate_keys() {
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(256, counters.clone());
    let err = BTree::bulk_load(
        disk,
        PlainCodec::new(counters.clone()),
        &[(3, RecordPtr(1)), (2, RecordPtr(2))],
    )
    .unwrap_err();
    assert!(matches!(err, TreeError::Invalid(_)));
    let disk = MemDisk::with_counters(256, counters.clone());
    assert!(BTree::bulk_load(
        disk,
        PlainCodec::new(counters),
        &[(3, RecordPtr(1)), (3, RecordPtr(2))],
    )
    .is_err());
}

#[test]
fn bulk_load_writes_each_block_once() {
    let items: Vec<(u64, RecordPtr)> = (0..3_000u64).map(|k| (k, RecordPtr(k))).collect();
    let counters = OpCounters::new();
    let disk = MemDisk::with_counters(256, counters.clone());
    let tree = BTree::bulk_load(disk, PlainCodec::new(counters), &items).unwrap();
    let s = tree.counters().snapshot();
    // Block writes ≈ node count + superblock writes; far below the ~2 writes
    // per insert an incremental build costs.
    let nodes = tree.store().num_blocks() as u64;
    assert!(
        s.block_writes <= nodes + 4,
        "bulk load wrote {} blocks for {} nodes",
        s.block_writes,
        nodes
    );
    assert_eq!(s.splits, 0, "no splits during bulk load");
    tree.validate().unwrap();
}

#[test]
fn bulk_load_supports_mutation_afterwards() {
    let items: Vec<(u64, u64)> = (0..800u64).map(|k| (k * 2, k)).collect();
    let mut tree = bulk(&items, 256);
    // Insert odd keys, delete some evens.
    for k in 0..200u64 {
        tree.insert(k * 2 + 1, RecordPtr(k + 10_000)).unwrap();
    }
    for k in (0..800u64).step_by(5) {
        tree.delete(k * 2).unwrap();
    }
    tree.validate().unwrap();
    assert_eq!(tree.len(), 800 + 200 - 160);
}

#[test]
fn relocate_node_moves_root_and_interior_nodes() {
    let mut tree = make_tree(256);
    for k in 0..400u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    // Free some blocks by deleting (merges return node blocks).
    for k in 0..300u64 {
        tree.delete(k).unwrap();
    }
    let free = tree.store().free_block_ids();
    assert!(!free.is_empty(), "merges freed node blocks");
    // Relocate the root into a chosen free slot.
    let root = tree.root_id();
    let target = BlockId(free[0]);
    tree.relocate_node(root, target).unwrap();
    assert_eq!(tree.root_id(), target);
    tree.validate().unwrap();
    // Relocate a non-root node.
    let free = tree.store().free_block_ids();
    if let Some(&slot) = free.first() {
        let victim = (0..tree.store().num_blocks())
            .map(BlockId)
            .find(|&b| {
                b.0 != 0 && b != tree.root_id() && !tree.store().free_block_ids().contains(&b.0)
            })
            .unwrap();
        tree.relocate_node(victim, BlockId(slot)).unwrap();
        tree.validate().unwrap();
    }
    for k in 300..400u64 {
        assert_eq!(tree.get(k).unwrap(), Some(RecordPtr(k)), "key {k}");
    }
}

#[test]
fn compact_nodes_packs_and_truncates_the_device() {
    let mut tree = make_tree(256);
    for k in 0..2_000u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    let grown = tree.store().num_blocks();
    // Shrink to 5% of the dataset.
    for k in 0..1_900u64 {
        tree.delete(k).unwrap();
    }
    let mut moved_total = 0u64;
    loop {
        let (moved, _) = tree.compact_nodes(64).unwrap();
        if moved == 0 {
            break;
        }
        moved_total += moved;
    }
    assert!(moved_total > 0, "sliding pass moved live nodes down");
    let packed = tree.store().num_blocks();
    assert!(
        packed < grown / 4,
        "device should shrink well below the high-water mark: {packed} vs {grown}"
    );
    assert_eq!(
        tree.store().free_blocks(),
        0,
        "a fully packed device has no interior free blocks"
    );
    tree.validate().unwrap();
    for k in 1_900..2_000u64 {
        assert_eq!(tree.get(k).unwrap(), Some(RecordPtr(k)), "key {k}");
    }
    let s = tree.counters().snapshot();
    assert_eq!(s.compact_moved_nodes, moved_total);
    assert!(s.device_truncated_blocks > 0);
}

#[test]
fn compact_nodes_is_a_noop_on_a_packed_device() {
    let mut tree = make_tree(256);
    for k in 0..500u64 {
        tree.insert(k, RecordPtr(k)).unwrap();
    }
    // A freshly grown device may already be packed (no frees yet).
    let before = tree.store().num_blocks();
    let (moved, truncated) = tree.compact_nodes(1_000).unwrap();
    assert_eq!((moved, truncated), (0, 0));
    assert_eq!(tree.store().num_blocks(), before);
    tree.validate().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_compact_nodes_preserves_content(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = make_tree(256);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..600 {
            let k = rng.gen_range(0..800u64);
            if rng.gen_bool(0.6) {
                tree.insert(k, RecordPtr(k)).unwrap();
                model.insert(k, RecordPtr(k));
            } else {
                let got = tree.delete(k).unwrap();
                prop_assert_eq!(got, model.remove(&k));
            }
            if rng.gen_bool(0.05) {
                tree.compact_nodes(8).unwrap();
            }
        }
        while tree.compact_nodes(64).unwrap().0 > 0 {}
        tree.validate().unwrap();
        let got: Vec<(u64, RecordPtr)> = tree.scan_all().unwrap();
        let want: Vec<(u64, RecordPtr)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
