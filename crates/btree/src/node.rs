//! In-memory representation of a B-tree node block.
//!
//! Following §3 (and Elmasri & Navathe's layout), a node block with `n`
//! triplets carries `n` search keys `k₁ < … < k_n`, `n` data pointers
//! `a₁ … a_n`, and — when internal — `n + 1` tree pointers `p₀ … p_n`. The
//! *disk* representation of a node is owned entirely by the
//! [`NodeCodec`](crate::codec::NodeCodec); this struct is always plaintext.

use sks_storage::BlockId;

/// Pointer to a record in a data block (opaque to the tree; the record
/// store packs block number and slot into it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordPtr(pub u64);

impl RecordPtr {
    /// Packs a data-block id and slot index.
    pub fn pack(block: BlockId, slot: u16) -> Self {
        RecordPtr(((block.0 as u64) << 16) | slot as u64)
    }

    pub fn block(self) -> BlockId {
        BlockId((self.0 >> 16) as u32)
    }

    pub fn slot(self) -> u16 {
        self.0 as u16
    }
}

impl std::fmt::Display for RecordPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.block(), self.slot())
    }
}

/// A plaintext B-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The block this node lives in (bound into pointer cryptograms as `b`).
    pub id: BlockId,
    /// Search keys, strictly ascending.
    pub keys: Vec<u64>,
    /// Data pointer `aᵢ` for each key.
    pub data_ptrs: Vec<RecordPtr>,
    /// Child pointers; empty iff leaf, else `keys.len() + 1` entries.
    pub children: Vec<BlockId>,
}

impl Node {
    /// A fresh empty leaf.
    pub fn leaf(id: BlockId) -> Self {
        Node {
            id,
            keys: Vec::new(),
            data_ptrs: Vec::new(),
            children: Vec::new(),
        }
    }

    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Number of triplets `n`.
    pub fn n(&self) -> usize {
        self.keys.len()
    }

    /// Structural well-formedness (shape only; ordering is checked by
    /// [`check_sorted`](Node::check_sorted)).
    pub fn check_shape(&self) -> Result<(), String> {
        if self.keys.len() != self.data_ptrs.len() {
            return Err(format!(
                "node {}: {} keys but {} data pointers",
                self.id,
                self.keys.len(),
                self.data_ptrs.len()
            ));
        }
        if !self.children.is_empty() && self.children.len() != self.keys.len() + 1 {
            return Err(format!(
                "node {}: {} keys but {} children",
                self.id,
                self.keys.len(),
                self.children.len()
            ));
        }
        Ok(())
    }

    /// Keys must be strictly ascending.
    pub fn check_sorted(&self) -> Result<(), String> {
        for w in self.keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!(
                    "node {}: keys not strictly ascending ({} >= {})",
                    self.id, w[0], w[1]
                ));
            }
        }
        Ok(())
    }

    /// Index of `key`, or the child slot to descend into.
    pub fn search(&self, key: u64) -> NodeSearch {
        match self.keys.binary_search(&key) {
            Ok(i) => NodeSearch::Here(i),
            Err(i) => NodeSearch::Child(i),
        }
    }
}

/// Result of an in-node key search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSearch {
    /// Key found at triplet index `i`.
    Here(usize),
    /// Key absent; belongs in / under child slot `i`.
    Child(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_ptr_packing() {
        let p = RecordPtr::pack(BlockId(0xABCD), 0x1234);
        assert_eq!(p.block(), BlockId(0xABCD));
        assert_eq!(p.slot(), 0x1234);
        assert_eq!(p.to_string(), "b43981#4660");
        let max = RecordPtr::pack(BlockId(u32::MAX), u16::MAX);
        assert_eq!(max.block(), BlockId(u32::MAX));
        assert_eq!(max.slot(), u16::MAX);
    }

    fn sample_internal() -> Node {
        Node {
            id: BlockId(5),
            keys: vec![10, 20, 30],
            data_ptrs: vec![RecordPtr(1), RecordPtr(2), RecordPtr(3)],
            children: vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4)],
        }
    }

    #[test]
    fn shape_checks() {
        let node = sample_internal();
        node.check_shape().unwrap();
        node.check_sorted().unwrap();

        let mut bad = sample_internal();
        bad.children.pop();
        assert!(bad.check_shape().is_err());

        let mut bad = sample_internal();
        bad.data_ptrs.pop();
        assert!(bad.check_shape().is_err());

        let mut bad = sample_internal();
        bad.keys = vec![10, 10, 30];
        assert!(bad.check_sorted().is_err());
    }

    #[test]
    fn node_search_semantics() {
        let node = sample_internal();
        assert_eq!(node.search(20), NodeSearch::Here(1));
        assert_eq!(node.search(5), NodeSearch::Child(0));
        assert_eq!(node.search(15), NodeSearch::Child(1));
        assert_eq!(node.search(35), NodeSearch::Child(3));
    }

    #[test]
    fn leaf_properties() {
        let leaf = Node::leaf(BlockId(7));
        assert!(leaf.is_leaf());
        assert_eq!(leaf.n(), 0);
        leaf.check_shape().unwrap();
    }
}
